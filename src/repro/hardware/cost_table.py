"""Offline latency / energy tables consumed by every scheduler.

The paper's schedulers receive "latency and energy information for each
layer for each accelerator in the system generated offline using a cost
model or a simulator" (Figure 4).  :class:`CostTable` is that artefact: an
immutable lookup table keyed by (model name, layer index, accelerator id),
built once per (platform, set of models) pair and shared by all schedulers
and the simulator, so every policy sees exactly the same cost estimates.

Performance architecture
------------------------
Scheduler hot loops query the same per-layer aggregates (sum / mean / min
across accelerators) thousands of times per simulated second, so the table
precomputes them once at build time into flat per-model arrays:

* per-(model, accelerator) arrays of ``latency_ms`` / ``energy_mj`` /
  ``compute_ms`` / ``memory_ms`` / launch overhead,
* per-(model, layer) cross-accelerator aggregates (total / average / best
  latency, total energy, worst-layer energy, best accelerator id),
* left-to-right prefix sums of each array, so any cost of layers
  ``[0, k)`` is a single O(1) lookup that is *bit-for-bit identical* to
  the sequential accumulation it replaces (prefix differences with a
  non-zero start are only ulp-accurate and are not used on the parity
  path),
* lazily memoized per-``pe_fraction`` effective-latency arrays (spatial
  fission scales only the compute-bound component), and
* memoized context-switch latency/energy per (model, previous model,
  accelerator) triple.

Every precomputed value is produced by the *same arithmetic expression* as
the scan it replaces, so optimized and reference simulations agree
bit-for-bit.  :meth:`CostTable.reference_view` returns a
:class:`ReferenceCostTable` that shares the underlying entries but answers
every aggregate with the original O(accelerators)-per-call scans — the
retained "pre-optimization" path that ``repro bench-engine`` measures
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.hardware.cost_model import AnalyticalCostModel, LayerCost, LayerLike
from repro.hardware.platform import Platform


class ModelGraphLike:
    """Minimal structural interface of a model graph (see repro.models.graph)."""

    name: str
    layers: Sequence[LayerLike]


@dataclass(frozen=True)
class ModelCostSummary:
    """Aggregate costs of one model on one platform.

    Attributes:
        total_macs: total multiply-accumulates of the model.
        best_case_latency_ms: sum over layers of the best per-layer latency.
        worst_case_latency_ms: sum over layers of the worst per-layer latency.
        average_latency_ms: sum over layers of the mean per-layer latency.
        best_case_energy_mj: sum over layers of the lowest per-layer energy.
        worst_case_energy_mj: sum over layers of the highest per-layer energy.
        activation_footprint_bytes: largest live activation footprint of any
            layer (used to price context switches).  Layer byte counts are
            integers, so the footprint is an exact integer byte count.
    """

    total_macs: int
    best_case_latency_ms: float
    worst_case_latency_ms: float
    average_latency_ms: float
    best_case_energy_mj: float
    worst_case_energy_mj: float
    activation_footprint_bytes: int


def _prefix_sums(values: Sequence[float]) -> tuple[float, ...]:
    """Left-to-right running sums: result[k] = sum(values[:k]) sequentially."""
    sums = [0.0]
    acc = 0.0
    for value in values:
        acc += value
        sums.append(acc)
    return tuple(sums)


class _ModelArrays:
    """Flat per-model cost arrays (internal; see the module docstring)."""

    __slots__ = (
        "num_layers",
        "latency",            # [acc_id][layer] -> latency_ms
        "energy",             # [acc_id][layer] -> energy_mj
        "compute",            # [acc_id][layer] -> compute_ms
        "memory",             # [acc_id][layer] -> memory_ms
        "overhead",           # [acc_id][layer] -> latency - max(compute, memory)
        "latency_prefix",     # [acc_id][k] -> sum of latency[:k]
        "energy_prefix",      # [acc_id][k] -> sum of energy[:k]
        "total_latency",      # [layer] -> sum across accelerators
        "average_latency",    # [layer] -> mean across accelerators
        "total_energy",       # [layer] -> sum across accelerators
        "best_latency",       # [layer] -> min across accelerators
        "worst_energy",       # [layer] -> max across accelerators
        "best_acc",           # [layer] -> fastest accelerator id
        "worst_energy_prefix",  # [k] -> sum of worst_energy[:k]
        "full_average_latency",  # sum(total_latency) / num_accelerators
        "acc_rows",             # [layer][acc_id] -> (latency_ms, energy_mj)
    )

    def __init__(self, rows: Sequence[Sequence[LayerCost]], num_accelerators: int) -> None:
        self.num_layers = len(rows)
        self.latency = tuple(
            tuple(row[acc].latency_ms for row in rows) for acc in range(num_accelerators)
        )
        self.energy = tuple(
            tuple(row[acc].energy_mj for row in rows) for acc in range(num_accelerators)
        )
        self.compute = tuple(
            tuple(row[acc].compute_ms for row in rows) for acc in range(num_accelerators)
        )
        self.memory = tuple(
            tuple(row[acc].memory_ms for row in rows) for acc in range(num_accelerators)
        )
        # Launch overhead: same expression as the executor's historical
        # ``latency - max(compute, memory)`` so fission pricing is identical.
        self.overhead = tuple(
            tuple(
                lat - max(comp, mem)
                for lat, comp, mem in zip(self.latency[acc], self.compute[acc], self.memory[acc])
            )
            for acc in range(num_accelerators)
        )
        self.latency_prefix = tuple(_prefix_sums(self.latency[acc]) for acc in range(num_accelerators))
        self.energy_prefix = tuple(_prefix_sums(self.energy[acc]) for acc in range(num_accelerators))
        # Cross-accelerator aggregates, built with the exact expressions the
        # per-call scans used (generator sum / min / max over the row).
        self.total_latency = tuple(sum(c.latency_ms for c in row) for row in rows)
        self.average_latency = tuple(
            sum(c.latency_ms for c in row) / len(row) for row in rows
        )
        self.total_energy = tuple(sum(c.energy_mj for c in row) for row in rows)
        self.best_latency = tuple(min(c.latency_ms for c in row) for row in rows)
        self.worst_energy = tuple(max(c.energy_mj for c in row) for row in rows)
        self.best_acc = tuple(
            min(range(len(row)), key=lambda acc_id: row[acc_id].latency_ms) for row in rows
        )
        self.worst_energy_prefix = _prefix_sums(self.worst_energy)
        self.full_average_latency = (
            sum(self.total_latency) / num_accelerators if num_accelerators else 0.0
        )
        self.acc_rows = tuple(
            tuple((cost.latency_ms, cost.energy_mj) for cost in row) for row in rows
        )


class CostTable:
    """Per-(model, layer, accelerator) latency and energy estimates.

    Use :meth:`build` to construct a table from a platform and a collection
    of model graphs.  Lookups raise ``KeyError`` for unknown models and
    ``IndexError`` for out-of-range layer indices, so scheduler bugs surface
    immediately instead of silently producing bogus scores.
    """

    def __init__(
        self,
        platform: Platform,
        entries: Mapping[str, Sequence[Sequence[LayerCost]]],
        summaries: Mapping[str, ModelCostSummary],
    ) -> None:
        self._platform = platform
        # entries[model_name][layer_index][acc_id] -> LayerCost
        self._entries = {name: tuple(tuple(row) for row in rows) for name, rows in entries.items()}
        self._summaries = dict(summaries)
        num_acc = platform.num_accelerators
        self._arrays = {
            name: _ModelArrays(rows, num_acc) for name, rows in self._entries.items()
        }
        # (model, previous_model, acc_id) -> (latency_ms, energy_mj)
        self._switch_cache: dict[tuple[str, str, int], tuple[float, float]] = {}
        # (model, acc_id, pe_fraction) -> (eff_latency array, its prefix sums)
        self._effective_cache: dict[
            tuple[str, int, float], tuple[tuple[float, ...], tuple[float, ...]]
        ] = {}
        # Lazily built NumPy projection (see repro.hardware.vector_view).
        self._vector_view = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        platform: Platform,
        models: Iterable[ModelGraphLike],
        cost_model: AnalyticalCostModel | None = None,
    ) -> "CostTable":
        """Build the table for ``models`` on ``platform``.

        Args:
            platform: the multi-accelerator system.
            models: model graphs; each must have a unique ``name``.
            cost_model: the analytical cost model (a default instance is
                created when omitted).
        """
        cost_model = cost_model or AnalyticalCostModel()
        entries: dict[str, list[list[LayerCost]]] = {}
        summaries: dict[str, ModelCostSummary] = {}
        for model in models:
            if model.name in entries:
                raise ValueError(f"duplicate model name in cost table: {model.name!r}")
            rows: list[list[LayerCost]] = []
            for layer in model.layers:
                rows.append([cost_model.cost(layer, acc) for acc in platform])
            entries[model.name] = rows
            summaries[model.name] = cls._summarize(model, rows)
        return cls(platform, entries, summaries)

    @staticmethod
    def _summarize(
        model: ModelGraphLike, rows: Sequence[Sequence[LayerCost]]
    ) -> ModelCostSummary:
        best_lat = sum(min(c.latency_ms for c in row) for row in rows) if rows else 0.0
        worst_lat = sum(max(c.latency_ms for c in row) for row in rows) if rows else 0.0
        avg_lat = (
            sum(sum(c.latency_ms for c in row) / len(row) for row in rows) if rows else 0.0
        )
        best_energy = sum(min(c.energy_mj for c in row) for row in rows) if rows else 0.0
        worst_energy = sum(max(c.energy_mj for c in row) for row in rows) if rows else 0.0
        footprint = max(
            (layer.input_bytes + layer.output_bytes for layer in model.layers),
            default=0,
        )
        return ModelCostSummary(
            total_macs=sum(layer.macs for layer in model.layers),
            best_case_latency_ms=best_lat,
            worst_case_latency_ms=worst_lat,
            average_latency_ms=avg_lat,
            best_case_energy_mj=best_energy,
            worst_case_energy_mj=worst_energy,
            activation_footprint_bytes=footprint,
        )

    def reference_view(self) -> "ReferenceCostTable":
        """A view answering every aggregate with the original per-call scans.

        The view shares this table's entries and summaries (values are
        bit-for-bit identical either way); only the *cost* of answering a
        query differs.  The reference simulation path uses it so that
        ``repro bench-engine`` measures honest pre-optimization timings.
        """
        view = ReferenceCostTable.__new__(ReferenceCostTable)
        view._platform = self._platform
        view._entries = self._entries
        view._summaries = self._summaries
        view._arrays = self._arrays
        view._switch_cache = {}
        view._effective_cache = {}
        view._vector_view = None
        return view

    def vector_view(self):
        """The memoized :class:`~repro.hardware.vector_view.VectorCostView`.

        Built on first use (the vector kernel is opt-in, and the build
        needs NumPy); shared by every kernel bound to this table, like the
        flat arrays themselves.
        """
        view = self._vector_view
        if view is None:
            from repro.hardware.vector_view import VectorCostView

            view = VectorCostView(self)
            self._vector_view = view
        return view

    # ------------------------------------------------------------------ #
    # basic lookups
    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> Platform:
        """The platform this table was built for."""
        return self._platform

    @property
    def num_accelerators(self) -> int:
        """Number of accelerators in the platform."""
        return self._platform.num_accelerators

    @property
    def model_names(self) -> list[str]:
        """Names of all models present in the table."""
        return sorted(self._entries)

    def __contains__(self, model_name: str) -> bool:
        return model_name in self._entries

    def num_layers(self, model_name: str) -> int:
        """Number of layers recorded for ``model_name``."""
        return len(self._entries[model_name])

    def layer_cost(self, model_name: str, layer_index: int, acc_id: int) -> LayerCost:
        """Full :class:`LayerCost` record for one (layer, accelerator) pair."""
        return self._entries[model_name][layer_index][acc_id]

    def latency(self, model_name: str, layer_index: int, acc_id: int) -> float:
        """EstLatency(layer, acc) in milliseconds (Algorithm 1 input)."""
        return self._arrays[model_name].latency[acc_id][layer_index]

    def energy(self, model_name: str, layer_index: int, acc_id: int) -> float:
        """EstEnergy(layer, acc) in millijoules (Algorithm 1 input)."""
        return self._arrays[model_name].energy[acc_id][layer_index]

    def summary(self, model_name: str) -> ModelCostSummary:
        """Aggregate cost summary for ``model_name``."""
        return self._summaries[model_name]

    # ------------------------------------------------------------------ #
    # flat-array accessors (the optimized executor's hot path)
    # ------------------------------------------------------------------ #
    def layer_arrays(self, model_name: str) -> _ModelArrays:
        """The precomputed flat cost arrays of one model."""
        return self._arrays[model_name]

    def effective_latency_table(
        self, model_name: str, acc_id: int, pe_fraction: float
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Per-layer effective latency under spatial fission, with prefix sums.

        ``eff[layer] = max(compute / pe_fraction, memory) + overhead`` — the
        exact expression of
        :meth:`repro.sim.executor.AcceleratorExecutor.effective_layer_latency_ms`
        — memoized per (model, accelerator, fraction).  Schedulers only use
        a handful of fractions (1.0 and the fission halves), so the cache
        stays tiny.  The second element holds left-to-right prefix sums, so
        the latency of layers ``[0, k)`` is ``prefix[k]`` with bit-for-bit
        the same value as sequentially accumulating from 0.0.
        """
        key = (model_name, acc_id, pe_fraction)
        cached = self._effective_cache.get(key)
        if cached is not None:
            return cached
        arrays = self._arrays[model_name]
        eff = tuple(
            max(comp / pe_fraction, mem) + over
            for comp, mem, over in zip(
                arrays.compute[acc_id], arrays.memory[acc_id], arrays.overhead[acc_id]
            )
        )
        value = (eff, _prefix_sums(eff))
        self._effective_cache[key] = value
        return value

    def full_average_latency(self, model_name: str) -> float:
        """Average-across-accelerators latency of the *whole* model.

        Equal (bit-for-bit) to ``remaining_average_latency(model,
        range(num_layers))`` but O(1); used by the Supernet switching policy
        which repeatedly prices entire candidate variants.
        """
        return self._arrays[model_name].full_average_latency

    # ------------------------------------------------------------------ #
    # aggregates used by scheduling policies
    # ------------------------------------------------------------------ #
    def average_latency(self, model_name: str, layer_index: int) -> float:
        """Mean latency of the layer across all accelerators."""
        return self._arrays[model_name].average_latency[layer_index]

    def total_latency(self, model_name: str, layer_index: int) -> float:
        """Sum of the layer's latency over all accelerators."""
        return self._arrays[model_name].total_latency[layer_index]

    def total_energy(self, model_name: str, layer_index: int) -> float:
        """Sum of the layer's energy over all accelerators."""
        return self._arrays[model_name].total_energy[layer_index]

    def worst_layer_energy(self, model_name: str, layer_index: int) -> float:
        """Energy on the most energy-hungry accelerator for the layer.

        Used to accumulate the per-model worst-case energy that normalizes
        UXCost (Algorithm 2, line 5).
        """
        return self._arrays[model_name].worst_energy[layer_index]

    def best_latency(self, model_name: str, layer_index: int) -> float:
        """Latency on the best (fastest) accelerator for the layer."""
        return self._arrays[model_name].best_latency[layer_index]

    def best_accelerator(self, model_name: str, layer_index: int) -> int:
        """Id of the fastest accelerator for the layer."""
        return self._arrays[model_name].best_acc[layer_index]

    def remaining_average_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        """ToGo(tsk): average-across-accelerators latency of remaining layers.

        Implements Algorithm 1, line 2: for each remaining layer sum the
        per-accelerator latencies, then divide by the accelerator count.
        """
        if not layer_indices:
            return 0.0
        totals = self._arrays[model_name].total_latency
        return sum(map(totals.__getitem__, layer_indices)) / self._platform.num_accelerators

    def remaining_best_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        """minimum_to_go: remaining time if every layer ran on its best accelerator.

        Used by the smart frame drop engine (Section 4.2.1, Condition 1).
        """
        best = self._arrays[model_name].best_latency
        return sum(map(best.__getitem__, layer_indices))

    def context_switch_energy(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        """CswitchEnergy(tsk, prevTask, acc) in millijoules (Algorithm 1, line 10).

        The cost of flushing the previous model's live activations to DRAM
        and fetching the new model's activations.  Switching to the model
        already resident on the accelerator is free.  Only on-chip state can
        be flushed or prefetched, so the moved bytes are capped at the
        accelerator's SRAM share (activations that never fit on-chip stream
        from DRAM during normal execution and are already charged there).
        """
        if previous_model is None or previous_model == new_model:
            return 0.0
        return self._switch_cost(new_model, previous_model, acc_id)[1]

    def context_switch_latency(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        """Latency overhead (ms) of a context switch on ``acc_id``.

        The moved bytes are capped at the accelerator's SRAM share, matching
        :meth:`context_switch_energy`.
        """
        if previous_model is None or previous_model == new_model:
            return 0.0
        return self._switch_cost(new_model, previous_model, acc_id)[0]

    def _switch_cost(
        self, new_model: str, previous_model: str, acc_id: int
    ) -> tuple[float, float]:
        """Memoized (latency_ms, energy_mj) of one model-switch triple."""
        key = (new_model, previous_model, acc_id)
        cached = self._switch_cache.get(key)
        if cached is not None:
            return cached
        acc = self._platform[acc_id]
        flush = min(self._summaries[previous_model].activation_footprint_bytes, acc.sram_bytes)
        fetch = min(self._summaries[new_model].activation_footprint_bytes, acc.sram_bytes)
        cost = acc.context_switch_cost(flush, fetch)
        value = (cost.latency_ms, cost.energy_mj)
        self._switch_cache[key] = value
        return value

    def worst_case_energy(self, model_name: str) -> float:
        """Worst-case energy of the model (UXCost normalization denominator)."""
        return self._summaries[model_name].worst_case_energy_mj


class ReferenceCostTable(CostTable):
    """The pre-optimization cost table: every aggregate is a per-call scan.

    Values are bit-for-bit identical to :class:`CostTable`'s (the flat
    arrays are built from these very expressions); only the work per query
    differs.  Obtained via :meth:`CostTable.reference_view`; the reference
    simulation mode hands it to schedulers and executors so benchmark
    comparisons measure the historical cost profile.
    """

    def latency(self, model_name: str, layer_index: int, acc_id: int) -> float:
        return self.layer_cost(model_name, layer_index, acc_id).latency_ms

    def energy(self, model_name: str, layer_index: int, acc_id: int) -> float:
        return self.layer_cost(model_name, layer_index, acc_id).energy_mj

    def average_latency(self, model_name: str, layer_index: int) -> float:
        row = self._entries[model_name][layer_index]
        return sum(c.latency_ms for c in row) / len(row)

    def total_latency(self, model_name: str, layer_index: int) -> float:
        row = self._entries[model_name][layer_index]
        return sum(c.latency_ms for c in row)

    def total_energy(self, model_name: str, layer_index: int) -> float:
        row = self._entries[model_name][layer_index]
        return sum(c.energy_mj for c in row)

    def worst_layer_energy(self, model_name: str, layer_index: int) -> float:
        row = self._entries[model_name][layer_index]
        return max(c.energy_mj for c in row)

    def best_latency(self, model_name: str, layer_index: int) -> float:
        row = self._entries[model_name][layer_index]
        return min(c.latency_ms for c in row)

    def best_accelerator(self, model_name: str, layer_index: int) -> int:
        row = self._entries[model_name][layer_index]
        return min(range(len(row)), key=lambda acc_id: row[acc_id].latency_ms)

    def remaining_average_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        if not layer_indices:
            return 0.0
        total = sum(self.total_latency(model_name, idx) for idx in layer_indices)
        return total / self.num_accelerators

    def remaining_best_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        return sum(self.best_latency(model_name, idx) for idx in layer_indices)

    def full_average_latency(self, model_name: str) -> float:
        return self.remaining_average_latency(
            model_name, list(range(self.num_layers(model_name)))
        )

    def context_switch_energy(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        if previous_model is None or previous_model == new_model:
            return 0.0
        acc = self._platform[acc_id]
        flush = min(self._summaries[previous_model].activation_footprint_bytes, acc.sram_bytes)
        fetch = min(self._summaries[new_model].activation_footprint_bytes, acc.sram_bytes)
        return acc.context_switch_cost(flush, fetch).energy_mj

    def context_switch_latency(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        if previous_model is None or previous_model == new_model:
            return 0.0
        acc = self._platform[acc_id]
        flush = min(self._summaries[previous_model].activation_footprint_bytes, acc.sram_bytes)
        fetch = min(self._summaries[new_model].activation_footprint_bytes, acc.sram_bytes)
        return acc.context_switch_cost(flush, fetch).latency_ms
