"""Offline latency / energy tables consumed by every scheduler.

The paper's schedulers receive "latency and energy information for each
layer for each accelerator in the system generated offline using a cost
model or a simulator" (Figure 4).  :class:`CostTable` is that artefact: an
immutable lookup table keyed by (model name, layer index, accelerator id),
built once per (platform, set of models) pair and shared by all schedulers
and the simulator, so every policy sees exactly the same cost estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.hardware.cost_model import AnalyticalCostModel, LayerCost, LayerLike
from repro.hardware.platform import Platform


class ModelGraphLike:
    """Minimal structural interface of a model graph (see repro.models.graph)."""

    name: str
    layers: Sequence[LayerLike]


@dataclass(frozen=True)
class ModelCostSummary:
    """Aggregate costs of one model on one platform.

    Attributes:
        total_macs: total multiply-accumulates of the model.
        best_case_latency_ms: sum over layers of the best per-layer latency.
        worst_case_latency_ms: sum over layers of the worst per-layer latency.
        average_latency_ms: sum over layers of the mean per-layer latency.
        best_case_energy_mj: sum over layers of the lowest per-layer energy.
        worst_case_energy_mj: sum over layers of the highest per-layer energy.
        activation_footprint_bytes: largest live activation footprint of any
            layer (used to price context switches).
    """

    total_macs: int
    best_case_latency_ms: float
    worst_case_latency_ms: float
    average_latency_ms: float
    best_case_energy_mj: float
    worst_case_energy_mj: float
    activation_footprint_bytes: float


class CostTable:
    """Per-(model, layer, accelerator) latency and energy estimates.

    Use :meth:`build` to construct a table from a platform and a collection
    of model graphs.  Lookups raise ``KeyError`` for unknown models and
    ``IndexError`` for out-of-range layer indices, so scheduler bugs surface
    immediately instead of silently producing bogus scores.
    """

    def __init__(
        self,
        platform: Platform,
        entries: Mapping[str, Sequence[Sequence[LayerCost]]],
        summaries: Mapping[str, ModelCostSummary],
    ) -> None:
        self._platform = platform
        # entries[model_name][layer_index][acc_id] -> LayerCost
        self._entries = {name: tuple(tuple(row) for row in rows) for name, rows in entries.items()}
        self._summaries = dict(summaries)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        platform: Platform,
        models: Iterable[ModelGraphLike],
        cost_model: AnalyticalCostModel | None = None,
    ) -> "CostTable":
        """Build the table for ``models`` on ``platform``.

        Args:
            platform: the multi-accelerator system.
            models: model graphs; each must have a unique ``name``.
            cost_model: the analytical cost model (a default instance is
                created when omitted).
        """
        cost_model = cost_model or AnalyticalCostModel()
        entries: dict[str, list[list[LayerCost]]] = {}
        summaries: dict[str, ModelCostSummary] = {}
        for model in models:
            if model.name in entries:
                raise ValueError(f"duplicate model name in cost table: {model.name!r}")
            rows: list[list[LayerCost]] = []
            for layer in model.layers:
                rows.append([cost_model.cost(layer, acc) for acc in platform])
            entries[model.name] = rows
            summaries[model.name] = cls._summarize(model, rows)
        return cls(platform, entries, summaries)

    @staticmethod
    def _summarize(
        model: ModelGraphLike, rows: Sequence[Sequence[LayerCost]]
    ) -> ModelCostSummary:
        best_lat = sum(min(c.latency_ms for c in row) for row in rows) if rows else 0.0
        worst_lat = sum(max(c.latency_ms for c in row) for row in rows) if rows else 0.0
        avg_lat = (
            sum(sum(c.latency_ms for c in row) / len(row) for row in rows) if rows else 0.0
        )
        best_energy = sum(min(c.energy_mj for c in row) for row in rows) if rows else 0.0
        worst_energy = sum(max(c.energy_mj for c in row) for row in rows) if rows else 0.0
        footprint = max(
            (layer.input_bytes + layer.output_bytes for layer in model.layers),
            default=0.0,
        )
        return ModelCostSummary(
            total_macs=sum(layer.macs for layer in model.layers),
            best_case_latency_ms=best_lat,
            worst_case_latency_ms=worst_lat,
            average_latency_ms=avg_lat,
            best_case_energy_mj=best_energy,
            worst_case_energy_mj=worst_energy,
            activation_footprint_bytes=float(footprint),
        )

    # ------------------------------------------------------------------ #
    # basic lookups
    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> Platform:
        """The platform this table was built for."""
        return self._platform

    @property
    def num_accelerators(self) -> int:
        """Number of accelerators in the platform."""
        return self._platform.num_accelerators

    @property
    def model_names(self) -> list[str]:
        """Names of all models present in the table."""
        return sorted(self._entries)

    def __contains__(self, model_name: str) -> bool:
        return model_name in self._entries

    def num_layers(self, model_name: str) -> int:
        """Number of layers recorded for ``model_name``."""
        return len(self._entries[model_name])

    def layer_cost(self, model_name: str, layer_index: int, acc_id: int) -> LayerCost:
        """Full :class:`LayerCost` record for one (layer, accelerator) pair."""
        return self._entries[model_name][layer_index][acc_id]

    def latency(self, model_name: str, layer_index: int, acc_id: int) -> float:
        """EstLatency(layer, acc) in milliseconds (Algorithm 1 input)."""
        return self.layer_cost(model_name, layer_index, acc_id).latency_ms

    def energy(self, model_name: str, layer_index: int, acc_id: int) -> float:
        """EstEnergy(layer, acc) in millijoules (Algorithm 1 input)."""
        return self.layer_cost(model_name, layer_index, acc_id).energy_mj

    def summary(self, model_name: str) -> ModelCostSummary:
        """Aggregate cost summary for ``model_name``."""
        return self._summaries[model_name]

    # ------------------------------------------------------------------ #
    # aggregates used by scheduling policies
    # ------------------------------------------------------------------ #
    def average_latency(self, model_name: str, layer_index: int) -> float:
        """Mean latency of the layer across all accelerators."""
        row = self._entries[model_name][layer_index]
        return sum(c.latency_ms for c in row) / len(row)

    def total_latency(self, model_name: str, layer_index: int) -> float:
        """Sum of the layer's latency over all accelerators."""
        row = self._entries[model_name][layer_index]
        return sum(c.latency_ms for c in row)

    def total_energy(self, model_name: str, layer_index: int) -> float:
        """Sum of the layer's energy over all accelerators."""
        row = self._entries[model_name][layer_index]
        return sum(c.energy_mj for c in row)

    def worst_layer_energy(self, model_name: str, layer_index: int) -> float:
        """Energy on the most energy-hungry accelerator for the layer.

        Used to accumulate the per-model worst-case energy that normalizes
        UXCost (Algorithm 2, line 5).
        """
        row = self._entries[model_name][layer_index]
        return max(c.energy_mj for c in row)

    def best_latency(self, model_name: str, layer_index: int) -> float:
        """Latency on the best (fastest) accelerator for the layer."""
        row = self._entries[model_name][layer_index]
        return min(c.latency_ms for c in row)

    def best_accelerator(self, model_name: str, layer_index: int) -> int:
        """Id of the fastest accelerator for the layer."""
        row = self._entries[model_name][layer_index]
        return min(range(len(row)), key=lambda acc_id: row[acc_id].latency_ms)

    def remaining_average_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        """ToGo(tsk): average-across-accelerators latency of remaining layers.

        Implements Algorithm 1, line 2: for each remaining layer sum the
        per-accelerator latencies, then divide by the accelerator count.
        """
        if not layer_indices:
            return 0.0
        total = sum(self.total_latency(model_name, idx) for idx in layer_indices)
        return total / self.num_accelerators

    def remaining_best_latency(
        self, model_name: str, layer_indices: Sequence[int]
    ) -> float:
        """minimum_to_go: remaining time if every layer ran on its best accelerator.

        Used by the smart frame drop engine (Section 4.2.1, Condition 1).
        """
        return sum(self.best_latency(model_name, idx) for idx in layer_indices)

    def context_switch_energy(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        """CswitchEnergy(tsk, prevTask, acc) in millijoules (Algorithm 1, line 10).

        The cost of flushing the previous model's live activations to DRAM
        and fetching the new model's activations.  Switching to the model
        already resident on the accelerator is free.  Only on-chip state can
        be flushed or prefetched, so the moved bytes are capped at the
        accelerator's SRAM share (activations that never fit on-chip stream
        from DRAM during normal execution and are already charged there).
        """
        if previous_model is None or previous_model == new_model:
            return 0.0
        acc = self._platform[acc_id]
        flush = min(self._summaries[previous_model].activation_footprint_bytes, acc.sram_bytes)
        fetch = min(self._summaries[new_model].activation_footprint_bytes, acc.sram_bytes)
        return acc.context_switch_cost(flush, fetch).energy_mj

    def context_switch_latency(
        self, new_model: str, previous_model: str | None, acc_id: int
    ) -> float:
        """Latency overhead (ms) of a context switch on ``acc_id``.

        The moved bytes are capped at the accelerator's SRAM share, matching
        :meth:`context_switch_energy`.
        """
        if previous_model is None or previous_model == new_model:
            return 0.0
        acc = self._platform[acc_id]
        flush = min(self._summaries[previous_model].activation_footprint_bytes, acc.sram_bytes)
        fetch = min(self._summaries[new_model].activation_footprint_bytes, acc.sram_bytes)
        return acc.context_switch_cost(flush, fetch).latency_ms

    def worst_case_energy(self, model_name: str) -> float:
        """Worst-case energy of the model (UXCost normalization denominator)."""
        return self._summaries[model_name].worst_case_energy_mj
