"""Multi-accelerator platform descriptions (Table 2 of the paper).

A :class:`Platform` is a named collection of sub-accelerators that share the
on-chip SRAM and off-chip bandwidth.  The paper evaluates eight platforms:
4K and 8K total PEs, each in two homogeneous styles (2xWS, 2xOS) and two
heterogeneous styles (1WS+2OS, 1OS+2WS).  The shared 8 MiB SRAM and 90 GB/s
bandwidth are divided among sub-accelerators proportionally to their PE
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.hardware.accelerator import (
    Accelerator,
    DEFAULT_CLOCK_HZ,
    DEFAULT_DRAM_BANDWIDTH_GBPS,
    DEFAULT_SRAM_BYTES,
)
from repro.hardware.dataflow import Dataflow


@dataclass(frozen=True)
class Platform:
    """A multi-accelerator system.

    Attributes:
        name: preset or user-supplied platform name (e.g. ``"4k_1ws_2os"``).
        accelerators: the sub-accelerators, ordered by ``acc_id``.
    """

    name: str
    accelerators: tuple[Accelerator, ...]

    def __post_init__(self) -> None:
        if not self.accelerators:
            raise ValueError("a platform needs at least one accelerator")
        ids = [acc.acc_id for acc in self.accelerators]
        if ids != list(range(len(ids))):
            raise ValueError(
                f"accelerator ids must be 0..N-1 in order, got {ids}"
            )

    def __len__(self) -> int:
        return len(self.accelerators)

    def __iter__(self) -> Iterator[Accelerator]:
        return iter(self.accelerators)

    def __getitem__(self, acc_id: int) -> Accelerator:
        return self.accelerators[acc_id]

    @property
    def num_accelerators(self) -> int:
        """Number of sub-accelerators in the platform."""
        return len(self.accelerators)

    @property
    def total_pes(self) -> int:
        """Total number of PEs across all sub-accelerators."""
        return sum(acc.num_pes for acc in self.accelerators)

    @property
    def is_heterogeneous(self) -> bool:
        """True if the platform mixes dataflows or PE-array sizes."""
        dataflows = {acc.dataflow for acc in self.accelerators}
        sizes = {acc.num_pes for acc in self.accelerators}
        return len(dataflows) > 1 or len(sizes) > 1

    def describe(self) -> str:
        """One-line human-readable description of the platform."""
        parts = ", ".join(
            f"{acc.dataflow.value}x{acc.num_pes}" for acc in self.accelerators
        )
        return f"{self.name}: [{parts}] ({self.total_pes} PEs total)"


def build_platform(
    name: str,
    spec: Sequence[tuple[Dataflow, int]],
    sram_bytes: int = DEFAULT_SRAM_BYTES,
    dram_bandwidth_gbps: float = DEFAULT_DRAM_BANDWIDTH_GBPS,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> Platform:
    """Build a platform from a list of (dataflow, num_pes) pairs.

    The shared SRAM and DRAM bandwidth are split among the sub-accelerators
    proportionally to their PE counts.

    Args:
        name: platform name.
        spec: one (dataflow, PE count) pair per sub-accelerator.
        sram_bytes: total on-chip SRAM shared by the platform.
        dram_bandwidth_gbps: total off-chip bandwidth shared by the platform.
        clock_hz: common clock frequency.
    """
    if not spec:
        raise ValueError("platform spec must contain at least one accelerator")
    total_pes = sum(pes for _, pes in spec)
    accelerators = []
    for acc_id, (dataflow, num_pes) in enumerate(spec):
        share = num_pes / total_pes
        accelerators.append(
            Accelerator(
                acc_id=acc_id,
                name=f"{dataflow.value}-{num_pes}#{acc_id}",
                dataflow=dataflow,
                num_pes=num_pes,
                sram_bytes=max(1, int(round(sram_bytes * share))),
                dram_bandwidth_gbps=dram_bandwidth_gbps * share,
                clock_hz=clock_hz,
            )
        )
    return Platform(name=name, accelerators=tuple(accelerators))


_WS = Dataflow.WEIGHT_STATIONARY
_OS = Dataflow.OUTPUT_STATIONARY

#: The eight platform presets of Table 2, keyed by name.
PLATFORM_PRESETS: dict[str, tuple[tuple[Dataflow, int], ...]] = {
    # 4K PEs total
    "4k_2ws": ((_WS, 2048), (_WS, 2048)),
    "4k_2os": ((_OS, 2048), (_OS, 2048)),
    "4k_1ws_2os": ((_WS, 2048), (_OS, 1024), (_OS, 1024)),
    "4k_1os_2ws": ((_OS, 2048), (_WS, 1024), (_WS, 1024)),
    # 8K PEs total
    "8k_2ws": ((_WS, 4096), (_WS, 4096)),
    "8k_2os": ((_OS, 4096), (_OS, 4096)),
    "8k_1ws_2os": ((_WS, 4096), (_OS, 2048), (_OS, 2048)),
    "8k_1os_2ws": ((_OS, 4096), (_WS, 2048), (_WS, 2048)),
}


def make_platform(name: str) -> Platform:
    """Instantiate one of the Table 2 platform presets by name.

    Raises:
        KeyError: if ``name`` is not a known preset.
    """
    try:
        spec = PLATFORM_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform preset {name!r}; known presets: "
            f"{sorted(PLATFORM_PRESETS)}"
        ) from None
    return build_platform(name, spec)


def heterogeneous_platform_names() -> list[str]:
    """Names of the heterogeneous-dataflow presets (Figure 7 platforms)."""
    return ["4k_1ws_2os", "4k_1os_2ws", "8k_1ws_2os", "8k_1os_2ws"]


def homogeneous_platform_names() -> list[str]:
    """Names of the homogeneous-dataflow presets (Figure 8 platforms)."""
    return ["4k_2ws", "4k_2os", "8k_2ws", "8k_2os"]


def all_platform_names() -> list[str]:
    """All preset names, heterogeneous first (paper's main results order)."""
    return heterogeneous_platform_names() + homogeneous_platform_names()
