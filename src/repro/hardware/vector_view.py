"""Flat NumPy mirrors of the cost table, for the vector decision kernel.

The scheduler hot loops consume the cost table one scalar at a time; the
vector kernel (:mod:`repro.core.vector_kernel`) instead scores whole
pending x idle populations with array operations.  This module builds the
arrays those operations gather from: every per-(model, layer) column of
:class:`~repro.hardware.cost_table._ModelArrays` concatenated into one
*global layer axis* (per-model offsets map ``(model, layer)`` to a global
index), plus a dense context-switch energy tensor.

Bit-for-bit contract: every element is the exact Python float already
stored in the cost table (float64 conversion is lossless), and the kernel
only ever applies the same elementwise IEEE-754 operations the scalar
expressions apply — so scores computed through these arrays are identical
to the scalar hot path's, bit for bit.

NumPy is an optional dependency of the package: importing this module is
always safe, but building a view without NumPy installed raises a
``RuntimeError`` explaining the fallback (``kernel="python"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised implicitly by every vector-kernel test
    import numpy as _np
except ImportError:  # pragma: no cover - the container always ships numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cost_table import CostTable

#: Whether the optional NumPy dependency is importable.
HAVE_NUMPY = _np is not None


def require_numpy():
    """Return the numpy module, or raise a helpful error when missing."""
    if _np is None:
        raise RuntimeError(
            "the vector decision kernel requires numpy, which is not "
            "installed; install numpy or run with kernel='python'"
        )
    return _np


class VectorCostView:
    """Dense NumPy projection of one :class:`CostTable`.

    Attributes:
        model_index: model name -> model id (sorted-name order).
        none_model: the pseudo model id meaning "no resident model" in the
            previous-model axis of :attr:`switch_energy`.
        layer_offset: model name -> base index on the global layer axis.
        latency / energy: ``[acc_id][global_layer]`` float64 matrices.
        total_latency / average_latency / total_energy / best_latency:
            per-global-layer cross-accelerator aggregates.
        switch_energy: ``[acc_id][previous_model][new_model]`` context
            switch energies, where ``previous_model == none_model`` (the
            extra trailing row) means the accelerator held no model —
            filled from :meth:`CostTable.context_switch_energy`, so every
            entry is the exact scalar the hot path reads.
    """

    def __init__(self, cost_table: "CostTable") -> None:
        np = require_numpy()
        platform = cost_table.platform
        num_acc = platform.num_accelerators
        names = cost_table.model_names  # sorted, deterministic
        self.model_index = {name: index for index, name in enumerate(names)}
        self.none_model = len(names)

        self.layer_offset: dict[str, int] = {}
        total_layers = 0
        per_model = []
        for name in names:
            arrays = cost_table.layer_arrays(name)
            self.layer_offset[name] = total_layers
            total_layers += arrays.num_layers
            per_model.append(arrays)
        self.num_global_layers = total_layers

        def concat(select):
            values: list[float] = []
            for arrays in per_model:
                values.extend(select(arrays))
            return np.array(values, dtype=np.float64)

        self.latency = np.empty((num_acc, total_layers), dtype=np.float64)
        self.energy = np.empty((num_acc, total_layers), dtype=np.float64)
        for acc_id in range(num_acc):
            self.latency[acc_id] = concat(lambda a, i=acc_id: a.latency[i])
            self.energy[acc_id] = concat(lambda a, i=acc_id: a.energy[i])
        self.total_latency = concat(lambda a: a.total_latency)
        self.average_latency = concat(lambda a: a.average_latency)
        self.total_energy = concat(lambda a: a.total_energy)
        self.best_latency = concat(lambda a: a.best_latency)

        # The "no resident model" row (index none_model) stays all zero —
        # context_switch_energy(new, None, acc) is 0.0 by definition.
        switch = np.zeros((num_acc, len(names) + 1, len(names)), dtype=np.float64)
        for acc_id in range(num_acc):
            for prev_id, prev in enumerate(names):
                for new_id, new in enumerate(names):
                    switch[acc_id, prev_id, new_id] = cost_table.context_switch_energy(
                        new, prev, acc_id
                    )
        self.switch_energy = switch

    def global_layer(self, model_name: str, layer_index: int) -> int:
        """Global-layer-axis index of one (model, layer) pair."""
        return self.layer_offset[model_name] + layer_index

    def resident_id(self, resident_model) -> int:
        """Previous-model axis index of an accelerator's resident model."""
        if resident_model is None:
            return self.none_model
        return self.model_index[resident_model]


__all__ = ["HAVE_NUMPY", "VectorCostView", "require_numpy"]
