"""Hardware substrate: accelerators, dataflows, analytical cost model.

This package models the multi-accelerator platforms the DREAM paper
evaluates on (Table 2): systems built from NVDLA-style weight-stationary
(WS) and ShiDianNao-style output-stationary (OS) sub-accelerators with
4K or 8K processing elements (PEs) in total, 8 MiB of shared on-chip
SRAM, 90 GB/s of off-chip bandwidth and a 700 MHz clock.

The scheduler-facing artefact is the :class:`~repro.hardware.cost_table.CostTable`,
the per-(layer, accelerator) latency/energy table that the paper generates
offline with MAESTRO and feeds to every scheduler (the red box in Figure 4).
Here the table is produced by :class:`~repro.hardware.cost_model.AnalyticalCostModel`,
an analytical WS/OS roofline model (see DESIGN.md for the substitution
rationale).
"""

from repro.hardware.dataflow import Dataflow
from repro.hardware.accelerator import Accelerator, ContextSwitchCost
from repro.hardware.cost_model import AnalyticalCostModel, LayerCost
from repro.hardware.cost_table import CostTable, ModelCostSummary, ReferenceCostTable
from repro.hardware.platform import (
    Platform,
    PLATFORM_PRESETS,
    build_platform,
    make_platform,
    all_platform_names,
    heterogeneous_platform_names,
    homogeneous_platform_names,
)

__all__ = [
    "Dataflow",
    "Accelerator",
    "ContextSwitchCost",
    "AnalyticalCostModel",
    "LayerCost",
    "CostTable",
    "ModelCostSummary",
    "ReferenceCostTable",
    "Platform",
    "PLATFORM_PRESETS",
    "build_platform",
    "make_platform",
    "all_platform_names",
    "heterogeneous_platform_names",
    "homogeneous_platform_names",
]
