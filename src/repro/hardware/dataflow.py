"""Accelerator dataflow styles.

The paper evaluates two dataflow styles inspired by published accelerators:

* **Weight-stationary (WS)** — NVDLA [24] style.  Weights are pinned in the
  PE array and reused across the input activations.  The PE array is mapped
  over the filter dimensions (output channels x input channels x kernel), so
  layers with many weights (dense convolutions, fully-connected and
  recurrent layers) achieve high utilization, while depthwise convolutions
  and small-channel layers leave most PEs idle.

* **Output-stationary (OS)** — ShiDianNao [7] style.  Partial sums stay in
  the PEs and the array is mapped over output spatial positions, so
  activation-heavy layers (early convolutions with large feature maps,
  depthwise convolutions) achieve high utilization, while fully-connected
  layers (a single output "pixel") do not.

The dataflow also shifts the on-chip traffic mix: WS re-reads activations
from SRAM more often (weights are held), OS re-reads weights more often
(partial sums are held).  Those asymmetries are what give each layer a
*preferred* accelerator, which MapScore's latency/energy preference terms
(Algorithm 1, lines 8 and 11) are designed to exploit.
"""

from __future__ import annotations

import enum


class Dataflow(enum.Enum):
    """Dataflow style of a sub-accelerator."""

    WEIGHT_STATIONARY = "WS"
    OUTPUT_STATIONARY = "OS"

    @property
    def short_name(self) -> str:
        """Two-letter name used in platform preset names ("WS" / "OS")."""
        return self.value

    @property
    def weight_reuse(self) -> float:
        """Relative on-chip reuse of weights (higher = fewer SRAM reads)."""
        if self is Dataflow.WEIGHT_STATIONARY:
            return 8.0
        return 2.0

    @property
    def activation_reuse(self) -> float:
        """Relative on-chip reuse of activations (higher = fewer SRAM reads)."""
        if self is Dataflow.WEIGHT_STATIONARY:
            return 2.0
        return 8.0

    @property
    def mac_energy_pj(self) -> float:
        """Energy per multiply-accumulate in picojoules.

        OS arrays keep partial sums local and spend slightly less energy per
        MAC; WS arrays pay a small forwarding cost for partial sums.  The
        absolute values are representative of 8-bit MACs in a recent edge
        process node.
        """
        if self is Dataflow.WEIGHT_STATIONARY:
            return 0.60
        return 0.55

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def parse_dataflow(name: str) -> Dataflow:
    """Parse a dataflow from a user-facing string ("ws", "WS", "os"...).

    Raises:
        ValueError: if the name is not a recognized dataflow.
    """
    normalized = name.strip().upper()
    for dataflow in Dataflow:
        if normalized in (dataflow.value, dataflow.name):
            return dataflow
    raise ValueError(
        f"unknown dataflow {name!r}; expected one of "
        f"{[d.value for d in Dataflow]}"
    )
