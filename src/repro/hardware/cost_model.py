"""Analytical latency / energy cost model for WS and OS accelerators.

The DREAM paper generates its per-(layer, accelerator) latency and energy
tables offline with the MAESTRO cost model.  This module provides the same
interface with an analytical model:

* **Latency** is roofline-style: the layer is either compute bound
  (MACs over the effectively utilized PEs) or memory bound (off-chip
  traffic over the accelerator's DRAM bandwidth share), plus a small fixed
  launch overhead per layer.

* **PE utilization** depends on the dataflow.  A weight-stationary array is
  spatially mapped over the filter elements, so its utilization is capped by
  the number of weight elements of the layer; an output-stationary array is
  mapped over output elements, so its utilization is capped by the number of
  outputs.  On top of that cap, each (dataflow, operator-type) pair has a
  mapping-efficiency factor reflecting how well the operator tiles onto the
  array.

* **Energy** is the sum of MAC energy, on-chip SRAM traffic energy (scaled
  down by the dataflow's reuse factors) and off-chip DRAM traffic energy
  (scaled up when the layer's working set exceeds the SRAM share, which
  forces re-fetch).

The absolute numbers are representative rather than silicon-accurate; what
matters for reproducing the paper is that the model is deterministic and
produces realistic *relative* behaviour: different layers prefer different
dataflows and sizes, bigger arrays help compute-bound layers and do not help
memory-bound ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.hardware.accelerator import (
    Accelerator,
    DRAM_ENERGY_PJ_PER_BYTE,
    LAYER_LAUNCH_OVERHEAD_MS,
    SRAM_ENERGY_PJ_PER_BYTE,
    STATIC_POWER_W_PER_PE,
)
from repro.hardware.dataflow import Dataflow


class LayerLike(Protocol):
    """Structural interface the cost model needs from a layer.

    Any object exposing these attributes can be costed; the concrete
    implementation lives in :mod:`repro.models.layers`.
    """

    name: str
    op_type: str
    macs: int
    weight_bytes: int
    input_bytes: int
    output_bytes: int
    output_elements: int
    weight_elements: int


#: Mapping efficiency of each operator type on each dataflow.  These factors
#: encode, e.g., that depthwise convolutions map poorly on a weight-stationary
#: array (too few weights to fill the array pipeline) and that fully-connected
#: and recurrent layers map poorly on an output-stationary array (too few
#: output pixels to keep rows busy).  The absolute scale (~0.5 for the
#: preferred dataflow) reflects measured end-to-end efficiencies of edge NPUs,
#: where tiling ramp/drain, partial tiles and synchronization keep sustained
#: throughput well below the peak MAC rate.
_MAPPING_EFFICIENCY = {
    Dataflow.WEIGHT_STATIONARY: {
        "conv": 0.52,
        "dwconv": 0.18,
        "fc": 0.60,
        "lstm": 0.58,
        "gru": 0.58,
        "pool": 0.28,
        "eltwise": 0.28,
        "activation": 0.28,
        "norm": 0.28,
        "embedding": 0.50,
        "attention": 0.52,
    },
    Dataflow.OUTPUT_STATIONARY: {
        "conv": 0.55,
        "dwconv": 0.50,
        "fc": 0.22,
        "lstm": 0.20,
        "gru": 0.20,
        "pool": 0.50,
        "eltwise": 0.50,
        "activation": 0.50,
        "norm": 0.50,
        "embedding": 0.25,
        "attention": 0.30,
    },
}

_DEFAULT_EFFICIENCY = 0.35


@dataclass(frozen=True)
class LayerCost:
    """Latency and energy of one layer on one accelerator.

    Attributes:
        latency_ms: end-to-end layer latency in milliseconds.
        energy_mj: layer energy in millijoules.
        compute_ms: compute-bound component of the latency.
        memory_ms: memory-bound component of the latency.
        dram_bytes: off-chip traffic in bytes.
        utilization: effective PE utilization in [0, 1].
    """

    latency_ms: float
    energy_mj: float
    compute_ms: float
    memory_ms: float
    dram_bytes: float
    utilization: float

    @property
    def is_memory_bound(self) -> bool:
        """Whether DRAM traffic, not compute, dominates the latency."""
        return self.memory_ms > self.compute_ms


class AnalyticalCostModel:
    """Deterministic analytical cost model for WS/OS accelerators.

    Args:
        launch_overhead_ms: fixed per-layer launch overhead.
        psum_traffic_fraction: fraction of a byte of partial-sum traffic
            charged per MAC on top of operand traffic.
    """

    def __init__(
        self,
        launch_overhead_ms: float = LAYER_LAUNCH_OVERHEAD_MS,
        psum_traffic_fraction: float = 0.125,
    ) -> None:
        if launch_overhead_ms < 0:
            raise ValueError("launch_overhead_ms must be non-negative")
        if psum_traffic_fraction < 0:
            raise ValueError("psum_traffic_fraction must be non-negative")
        self.launch_overhead_ms = launch_overhead_ms
        self.psum_traffic_fraction = psum_traffic_fraction

    # ------------------------------------------------------------------ #
    # utilization
    # ------------------------------------------------------------------ #
    def utilization(self, layer: LayerLike, accelerator: Accelerator) -> float:
        """Effective PE utilization of ``layer`` on ``accelerator``."""
        if accelerator.dataflow is Dataflow.WEIGHT_STATIONARY:
            parallel_work = max(1, layer.weight_elements)
        else:
            parallel_work = max(1, layer.output_elements)
        spatial_utilization = min(1.0, parallel_work / accelerator.num_pes)
        efficiency = _MAPPING_EFFICIENCY[accelerator.dataflow].get(
            layer.op_type, _DEFAULT_EFFICIENCY
        )
        return spatial_utilization * efficiency

    # ------------------------------------------------------------------ #
    # traffic
    # ------------------------------------------------------------------ #
    def dram_traffic_bytes(self, layer: LayerLike, accelerator: Accelerator) -> float:
        """Off-chip traffic of the layer, including SRAM-spill re-fetch."""
        working_set = layer.weight_bytes + layer.input_bytes + layer.output_bytes
        base_traffic = float(working_set)
        if working_set > accelerator.sram_bytes > 0:
            # The tile that does not fit must be streamed more than once; the
            # refetch factor grows with the overflow ratio but saturates so a
            # single huge layer does not produce absurd traffic.
            overflow = working_set / accelerator.sram_bytes
            refetch = 1.0 + min(2.0, 0.5 * (overflow - 1.0))
            base_traffic *= refetch
        return base_traffic

    def sram_traffic_bytes(self, layer: LayerLike, accelerator: Accelerator) -> float:
        """On-chip traffic generated while computing the layer."""
        dataflow = accelerator.dataflow
        operand_bytes_per_mac = (
            1.0 / dataflow.weight_reuse + 1.0 / dataflow.activation_reuse
        )
        return layer.macs * (operand_bytes_per_mac + self.psum_traffic_fraction)

    # ------------------------------------------------------------------ #
    # latency / energy
    # ------------------------------------------------------------------ #
    def cost(self, layer: LayerLike, accelerator: Accelerator) -> LayerCost:
        """Latency and energy of ``layer`` on ``accelerator``."""
        utilization = self.utilization(layer, accelerator)
        effective_macs_per_ms = accelerator.peak_macs_per_ms * max(utilization, 1e-9)
        compute_ms = layer.macs / effective_macs_per_ms

        dram_bytes = self.dram_traffic_bytes(layer, accelerator)
        memory_ms = dram_bytes / accelerator.bandwidth_bytes_per_ms

        latency_ms = max(compute_ms, memory_ms) + self.launch_overhead_ms

        sram_bytes = self.sram_traffic_bytes(layer, accelerator)
        energy_pj = (
            layer.macs * accelerator.dataflow.mac_energy_pj
            + sram_bytes * SRAM_ENERGY_PJ_PER_BYTE
            + dram_bytes * DRAM_ENERGY_PJ_PER_BYTE
        )
        # Static energy: the whole PE array leaks for as long as the layer
        # occupies the accelerator, independent of utilization.
        static_mj = latency_ms * 1e-3 * accelerator.num_pes * STATIC_POWER_W_PER_PE * 1e3
        energy_mj = energy_pj * 1e-9 + static_mj

        return LayerCost(
            latency_ms=latency_ms,
            energy_mj=energy_mj,
            compute_ms=compute_ms,
            memory_ms=memory_ms,
            dram_bytes=dram_bytes,
            utilization=utilization,
        )

    def latency_ms(self, layer: LayerLike, accelerator: Accelerator) -> float:
        """Convenience accessor for the latency only."""
        return self.cost(layer, accelerator).latency_ms

    def energy_mj(self, layer: LayerLike, accelerator: Accelerator) -> float:
        """Convenience accessor for the energy only."""
        return self.cost(layer, accelerator).energy_mj
