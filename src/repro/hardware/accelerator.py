"""Sub-accelerator description.

A platform (Table 2 in the paper) is a set of sub-accelerators that share
8 MiB of on-chip SRAM and 90 GB/s of off-chip DRAM bandwidth and run at
700 MHz.  Each sub-accelerator has its own PE array with a fixed dataflow
(WS or OS) and a number of PEs.

The :class:`Accelerator` dataclass captures the per-sub-accelerator share of
those resources; :class:`ContextSwitchCost` captures the cost of switching a
sub-accelerator from one task's model to another (flushing the switched-out
activations to DRAM and fetching the new ones), which feeds the
``Cost_switch`` term of Algorithm 1 (line 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.dataflow import Dataflow

#: Default platform-wide constants from Table 2 / Section 5.1.
DEFAULT_CLOCK_HZ = 700e6
DEFAULT_SRAM_BYTES = 8 * 1024 * 1024
DEFAULT_DRAM_BANDWIDTH_GBPS = 90.0

#: Energy per byte moved, in picojoules.  DRAM traffic is roughly an order
#: of magnitude more expensive than SRAM traffic in edge SoCs.
SRAM_ENERGY_PJ_PER_BYTE = 1.2
DRAM_ENERGY_PJ_PER_BYTE = 20.0

#: Static (leakage + clock tree) power per PE, in watts.  While a layer
#: occupies an accelerator, the whole PE array burns this power regardless of
#: utilization, so running a layer on a mismatched (slow) or oversized
#: accelerator costs real energy — the effect DREAM's energy score exploits.
STATIC_POWER_W_PER_PE = 1.2e-4

#: Fixed per-layer launch overhead (descriptor fetch, DMA programming,
#: configuration), in ms.  Edge NPUs typically spend on the order of ten
#: microseconds per operator dispatch.
LAYER_LAUNCH_OVERHEAD_MS = 0.010


@dataclass(frozen=True)
class ContextSwitchCost:
    """Cost of switching a sub-accelerator between two different tasks.

    Attributes:
        latency_ms: extra time before the new layer can start.
        energy_mj: extra energy (DRAM flush of the old task's live
            activations plus fetch of the new task's activations).
    """

    latency_ms: float
    energy_mj: float

    @staticmethod
    def zero() -> "ContextSwitchCost":
        """A free context switch (same task stays resident)."""
        return ContextSwitchCost(latency_ms=0.0, energy_mj=0.0)


@dataclass(frozen=True)
class Accelerator:
    """A single sub-accelerator in a multi-accelerator platform.

    Attributes:
        acc_id: unique integer id within the platform (index into score
            tables and availability vectors).
        name: human-readable name, e.g. ``"WS-2048#0"``.
        dataflow: the PE-array dataflow (WS or OS).
        num_pes: number of processing elements.
        sram_bytes: this sub-accelerator's share of the on-chip SRAM.
        dram_bandwidth_gbps: this sub-accelerator's share of off-chip
            bandwidth, in GB/s.
        clock_hz: clock frequency in Hz.
    """

    acc_id: int
    name: str
    dataflow: Dataflow
    num_pes: int
    sram_bytes: int = DEFAULT_SRAM_BYTES
    dram_bandwidth_gbps: float = DEFAULT_DRAM_BANDWIDTH_GBPS
    clock_hz: float = DEFAULT_CLOCK_HZ

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ValueError(f"num_pes must be positive, got {self.num_pes}")
        if self.sram_bytes <= 0:
            raise ValueError(f"sram_bytes must be positive, got {self.sram_bytes}")
        if self.dram_bandwidth_gbps <= 0:
            raise ValueError(
                f"dram_bandwidth_gbps must be positive, got {self.dram_bandwidth_gbps}"
            )
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")

    @property
    def bandwidth_bytes_per_ms(self) -> float:
        """Off-chip bandwidth expressed in bytes per millisecond."""
        return self.dram_bandwidth_gbps * 1e9 / 1e3

    @property
    def peak_macs_per_ms(self) -> float:
        """Peak MAC throughput (one MAC per PE per cycle) per millisecond."""
        return self.num_pes * self.clock_hz / 1e3

    def scaled(self, pe_fraction: float, acc_id: int | None = None) -> "Accelerator":
        """Return a logically partitioned copy with a fraction of the PEs.

        Used by the Planaria baseline, which spatially fissions an
        accelerator among concurrent DNNs.  SRAM and bandwidth shares scale
        with the PE fraction.

        Args:
            pe_fraction: fraction of PEs allocated to the partition (0, 1].
            acc_id: id of the partition; defaults to this accelerator's id.

        Raises:
            ValueError: if ``pe_fraction`` is not in (0, 1].
        """
        if not 0.0 < pe_fraction <= 1.0:
            raise ValueError(f"pe_fraction must be in (0, 1], got {pe_fraction}")
        return Accelerator(
            acc_id=self.acc_id if acc_id is None else acc_id,
            name=f"{self.name}/x{pe_fraction:.2f}",
            dataflow=self.dataflow,
            num_pes=max(1, int(round(self.num_pes * pe_fraction))),
            sram_bytes=max(1, int(round(self.sram_bytes * pe_fraction))),
            dram_bandwidth_gbps=self.dram_bandwidth_gbps * pe_fraction,
            clock_hz=self.clock_hz,
        )

    def context_switch_cost(
        self, flush_bytes: float, fetch_bytes: float
    ) -> ContextSwitchCost:
        """Cost of evicting ``flush_bytes`` and loading ``fetch_bytes``.

        Both transfers go through DRAM; latency is traffic over this
        accelerator's bandwidth share and energy is the DRAM energy of the
        moved bytes (Section 3.4).
        """
        total_bytes = max(0.0, flush_bytes) + max(0.0, fetch_bytes)
        latency_ms = total_bytes / self.bandwidth_bytes_per_ms
        energy_mj = total_bytes * DRAM_ENERGY_PJ_PER_BYTE * 1e-9
        return ContextSwitchCost(latency_ms=latency_ms, energy_mj=energy_mj)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}({self.dataflow.value}, {self.num_pes} PEs)"
