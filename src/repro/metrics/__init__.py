"""Evaluation metrics: UXCost (Algorithm 2) and reporting helpers."""

from repro.metrics.uxcost import ModelOutcome, UXCostBreakdown, compute_uxcost
from repro.metrics.quantiles import P2Quantile, StreamingQuantiles
from repro.metrics.reporting import (
    geometric_mean,
    relative_reduction,
    format_table,
    summarize_results,
)

__all__ = [
    "ModelOutcome",
    "P2Quantile",
    "StreamingQuantiles",
    "UXCostBreakdown",
    "compute_uxcost",
    "geometric_mean",
    "relative_reduction",
    "format_table",
    "summarize_results",
]
