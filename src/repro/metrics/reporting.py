"""Reporting helpers shared by the experiment harness and benchmarks.

The paper reports geometric-mean reductions of UXCost across scenarios and
platforms; these helpers implement those aggregations and a plain-text
table formatter so every benchmark can print paper-style rows without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Zero or negative entries are clamped to a tiny positive value so a
    single perfect result does not collapse the mean to zero — the same
    spirit as the paper's small-number rule in UXCost.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    clamped = [max(value, 1e-12) for value in values]
    return math.exp(sum(math.log(value) for value in clamped) / len(clamped))


def relative_reduction(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` relative to ``baseline``.

    A positive result means ``improved`` is lower (better, for
    lower-is-better metrics like UXCost).  Returns 0 when the baseline is
    non-positive.
    """
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Format a small table as aligned plain text.

    Args:
        headers: column headers.
        rows: table rows; floats are formatted with ``float_format``.
        float_format: format string applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def summarize_results(
    uxcosts: Mapping[str, Mapping[str, float]],
    baseline_names: Sequence[str],
    target_name: str,
) -> dict[str, float]:
    """Geometric-mean reduction of a target scheduler against baselines.

    Args:
        uxcosts: mapping of configuration name -> {scheduler name -> UXCost}.
        baseline_names: schedulers to compare against.
        target_name: the scheduler whose improvement is reported.

    Returns:
        Mapping of baseline name -> geometric-mean fractional UXCost
        reduction of ``target_name`` across all configurations where both
        schedulers have a result.
    """
    reductions: dict[str, float] = {}
    for baseline in baseline_names:
        ratios = []
        for config, by_scheduler in uxcosts.items():
            if baseline in by_scheduler and target_name in by_scheduler:
                base = by_scheduler[baseline]
                target = by_scheduler[target_name]
                if base > 0:
                    ratios.append(max(target, 1e-12) / base)
        if ratios:
            reductions[baseline] = 1.0 - geometric_mean(ratios)
    return reductions
