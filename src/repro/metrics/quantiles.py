"""Bounded-memory streaming quantiles (the P-squared algorithm).

Hour-long streaming simulations complete millions of frames, so per-task
latency distributions can no longer be derived by storing every sample.
:class:`P2Quantile` implements the P² ("P-squared") algorithm of Jain &
Chlamtac (CACM 1985): five markers track an estimated quantile with O(1)
memory and O(1) update cost, adjusting marker heights by piecewise-
parabolic interpolation.  :class:`StreamingQuantiles` bundles the p50 /
p95 / p99 markers the simulator reports.

Determinism: the update is pure floating-point arithmetic over the sample
sequence — no randomness, no timing — so two engines fed the identical
latency stream produce bit-for-bit identical quantile estimates (the
fast/reference parity tests rely on this).

Accuracy: while fewer than five samples have been observed the estimator
returns the *exact* linearly interpolated quantile of the sorted samples;
beyond that the P² estimate typically lands within a fraction of a
percent of the exact quantile for smooth distributions.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["P2Quantile", "StreamingQuantiles", "DEFAULT_PROBABILITIES"]

#: The quantiles the simulator tracks per task.
DEFAULT_PROBABILITIES: tuple[float, ...] = (0.5, 0.95, 0.99)


def _interpolated_quantile(sorted_samples: Sequence[float], p: float) -> float:
    """Exact linearly interpolated quantile of a small sorted sample set."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = p * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = rank - low
    return sorted_samples[low] + (sorted_samples[high] - sorted_samples[low]) * fraction


class P2Quantile:
    """One streaming quantile estimate in O(1) memory (P² algorithm)."""

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        # First five observations land here (kept sorted); once full these
        # become the marker heights q_1..q_5 of the paper.
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, sample: float) -> None:
        """Fold one observation into the estimate."""
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            insort(heights, sample)
            return

        positions = self._positions
        # 1. find the marker cell the sample falls into, extending extremes.
        if sample < heights[0]:
            heights[0] = sample
            cell = 0
        elif sample >= heights[4]:
            heights[4] = sample
            cell = 3
        else:
            cell = 0
            while sample >= heights[cell + 1]:
                cell += 1
        # 2. shift the actual positions of all markers above the cell.
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        # 3. advance the desired positions.
        desired = self._desired
        for index in range(5):
            desired[index] += self._increments[index]
        # 4. nudge the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 0.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (q[index + 1] - q[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (q[index] - q[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        q, n = self._heights, self._positions
        other = index + int(step)
        return q[index] + step * (q[other] - q[index]) / (n[other] - n[index])

    def value(self) -> float:
        """The current quantile estimate (exact below five samples).

        Raises:
            ValueError: if no sample has been observed yet.
        """
        if self._count == 0:
            raise ValueError("quantile of an empty stream")
        if self._count <= 5:
            return _interpolated_quantile(self._heights, self.p)
        return self._heights[2]


class StreamingQuantiles:
    """A fixed set of P² markers over one sample stream (p50/p95/p99)."""

    __slots__ = ("_markers", "_count")

    def __init__(self, probabilities: Iterable[float] = DEFAULT_PROBABILITIES) -> None:
        self._markers = {p: P2Quantile(p) for p in probabilities}
        if not self._markers:
            raise ValueError("at least one probability is required")
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, sample: float) -> None:
        """Fold one observation into every tracked quantile."""
        self._count += 1
        for marker in self._markers.values():
            marker.add(sample)

    def value(self, p: float) -> float:
        """The estimate for one tracked probability."""
        return self._markers[p].value()

    def summary(self) -> Optional[Mapping[str, float]]:
        """``{"count": n, "p50": ..., ...}`` or ``None`` for an empty stream.

        Keys are ``p`` followed by the percentile with any trailing zeros
        of the fractional part dropped (0.5 -> ``p50``, 0.99 -> ``p99``,
        0.999 -> ``p99.9``).
        """
        if self._count == 0:
            return None
        payload: dict[str, float] = {"count": self._count}
        for p, marker in self._markers.items():
            payload[f"p{100 * p:g}"] = marker.value()
        return payload
