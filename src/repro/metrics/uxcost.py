"""UXCost — the paper's user-experience cost metric (Algorithm 2).

UXCost is an EDP-like, lower-is-better metric: the product of the summed
per-model deadline-violation rates and the summed per-model normalized
energies over an execution window.  Two details from the paper are easy to
miss and are implemented here exactly:

* a model with *zero* violations contributes ``1 / (2 * total_frames)``
  instead of 0, so a perfect deadline record does not zero out the whole
  product and energy still matters (Algorithm 2, lines 7-8);
* dropped frames are treated as deadline violations (completion = infinity,
  Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ModelOutcome:
    """Per-model outcome of one simulated execution window.

    Attributes:
        model_name: the model (task) the outcome belongs to.
        total_frames: frames whose deadline fell inside the window.
        violated_frames: frames that missed their deadline (including
            dropped and abandoned frames).
        actual_energy_mj: energy actually consumed by the model's frames.
        worst_case_energy_mj: energy those frames would have consumed had
            every layer run on its most energy-hungry accelerator.
    """

    model_name: str
    total_frames: int
    violated_frames: int
    actual_energy_mj: float
    worst_case_energy_mj: float

    def __post_init__(self) -> None:
        if self.total_frames < 0 or self.violated_frames < 0:
            raise ValueError("frame counts must be non-negative")
        if self.violated_frames > self.total_frames:
            raise ValueError(
                f"model {self.model_name!r}: violated_frames "
                f"({self.violated_frames}) exceeds total_frames ({self.total_frames})"
            )
        if self.actual_energy_mj < 0 or self.worst_case_energy_mj < 0:
            raise ValueError("energy values must be non-negative")

    @property
    def violation_rate(self) -> float:
        """Rate_DLV with the paper's small-number rule for zero violations."""
        if self.total_frames == 0:
            return 0.0
        if self.violated_frames == 0:
            return 1.0 / (2.0 * self.total_frames)
        return self.violated_frames / self.total_frames

    @property
    def raw_violation_rate(self) -> float:
        """Plain violated / total rate without the small-number rule."""
        if self.total_frames == 0:
            return 0.0
        return self.violated_frames / self.total_frames

    @property
    def normalized_energy(self) -> float:
        """NormEnergy: actual energy over worst-case energy, in [0, ~1]."""
        if self.worst_case_energy_mj <= 0.0:
            return 0.0
        return self.actual_energy_mj / self.worst_case_energy_mj


@dataclass(frozen=True)
class UXCostBreakdown:
    """UXCost together with its two factors (for Figures 7 and 13)."""

    uxcost: float
    overall_violation_rate: float
    overall_normalized_energy: float
    per_model: tuple[ModelOutcome, ...]

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"UXCost={self.uxcost:.4f} "
            f"(sum DLV rate={self.overall_violation_rate:.4f}, "
            f"sum norm energy={self.overall_normalized_energy:.4f})"
        )


def compute_uxcost(outcomes: Iterable[ModelOutcome]) -> UXCostBreakdown:
    """Compute UXCost for a set of per-model outcomes (Algorithm 2).

    Args:
        outcomes: one :class:`ModelOutcome` per model in the workload.

    Returns:
        The UXCost value and its two factors.  Models with zero frames in
        the window are ignored (they contribute nothing to either factor).
    """
    outcomes = tuple(outcomes)
    active = [outcome for outcome in outcomes if outcome.total_frames > 0]
    overall_rate = sum(outcome.violation_rate for outcome in active)
    overall_energy = sum(outcome.normalized_energy for outcome in active)
    return UXCostBreakdown(
        uxcost=overall_rate * overall_energy,
        overall_violation_rate=overall_rate,
        overall_normalized_energy=overall_energy,
        per_model=outcomes,
    )
