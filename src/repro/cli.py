"""``repro`` — the console entry point of the reproduction.

Subcommands:

* ``repro list`` — every scenario, platform, scheduler, backend and figure
  preset the harness knows about.
* ``repro grid`` — run a (scenario x platform x scheduler) grid on a chosen
  execution backend, print the paper-style UXCost table, optionally
  persisting results (``--store``) and dumping structured JSON (``--json``).
  ``--smoke`` selects the small fixed grid CI uses for backend parity;
  ``--kernel vector`` (also on ``repro generate --run``) evaluates DREAM's
  scheduling rounds through the NumPy decision kernel (bit-for-bit
  identical decisions).
* ``repro figure N`` — regenerate one evaluation figure (or ``all``),
  routed through the selected backend via
  :func:`repro.experiments.harness.default_execution`.
* ``repro bench`` — time the same grid on the serial and process backends,
  assert bit-for-bit parity, and emit a machine-readable ``BENCH_grid.json``
  (cells/sec, wall times, speedup) so perf trajectories persist across PRs.
* ``repro bench-engine`` — time the simulation hot loop itself: run the
  Table-3 grid plus generated scenarios across all registered schedulers on
  the optimized engine (scalar and, when numpy is available, the vector
  decision kernel) and the retained reference path, assert bit-for-bit
  result parity across all passes, report events/sec, and emit
  ``BENCH_engine.json``.  ``--quick`` selects the CI-sized basket,
  ``--jobs N`` fans cells out to the process execution backend,
  ``--profile`` (fixed dump path) / ``--profile-out PATH`` capture a
  cProfile of the optimized passes, and ``--baseline`` /
  ``--max-regression`` / ``--max-round-regression`` gate wall-clock and
  scheduler-invocation regressions against a committed baseline.
* ``repro generate`` — sample randomized scenarios from the model zoo
  (seeded, reproducible), optionally writing the generator spec and running
  the generated grid on any backend/store.  ``--traffic`` samples
  non-periodic arrival processes (Poisson, bursty, load-scaled) per head
  task; ``--latency`` (also on ``repro grid``) prints the streamed
  per-task latency quantiles.
* ``repro fuzz`` — cross-scheduler differential testing: run every
  requested scheduler on each generated scenario, audit the trace-invariant
  oracle and the metamorphic cross-scheduler properties, and write failing
  scenario specs as replayable artifacts.  ``--traffic`` extends the sweep
  to non-periodic arrival processes; ``--kernels python,vector,reference``
  (or ``all``) re-runs every scheduler on each decision path and reports
  any result/trace divergence as a ``kernel_parity`` violation.
  Exit codes: 0 = clean,
  1 = harness error (a scheduler/engine crashed), 2 = usage error,
  3 = invariant or metamorphic violation.  ``--replay <spec.json>``
  deterministically re-runs a stored artifact.
* ``repro fleet run`` / ``repro fleet describe`` — simulate N heterogeneous
  platforms behind a routing/admission tier (:mod:`repro.fleet`): sessions
  from user populations are routed by a pluggable policy (round-robin,
  least-loaded, fair-share), every admitted session runs as one
  per-platform simulation on the chosen backend, and the fleet invariant
  oracle audits the admission trace (exit 3 on violation, like ``fuzz``).
  ``describe`` resolves the spec and prints the admission plan without
  running any simulation.

Every subcommand is importable and drives the same public harness API the
tests use; the CLI adds no simulation logic of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.experiments import figures as figures_mod
from repro.experiments.backends import backend_names
from repro.experiments.differential import (
    FAULT_AXIS_NAMES,
    KERNEL_AXIS_NAMES,
    RESOURCE_MODEL_AXIS_NAMES,
    replay_artifact,
    run_fuzz,
)
from repro.experiments.harness import (
    GridResult,
    default_execution,
    execute_jobs,
    run_grid,
)
from repro.experiments.jobs import generated_cell_jobs, grid_jobs
from repro.experiments.store import ResultStore
from repro.fleet import (
    FleetSimulator,
    FleetSpec,
    PlatformSpec,
    audit_fleet,
    routing_policy_names,
    simulate_fleet,
)
from repro.hardware.platform import all_platform_names
from repro.hardware.vector_view import HAVE_NUMPY
from repro.sim import (
    ENGINE_KERNELS,
    ENGINE_LOOPS,
    available_loops,
    fastloop_is_compiled,
    resource_model_names,
)
from repro.metrics.reporting import format_table
from repro.schedulers import scheduler_names
from repro.workloads import (
    GeneratorSpec,
    ScenarioGenerator,
    UserSpec,
    arrival_process_names,
    make_arrival_process,
    scenario_names,
)

#: ``repro fuzz`` exit code for invariant/metamorphic violations (a harness
#: error exits 1 and a usage error exits 2, so the three are distinguishable
#: in CI).
EXIT_INVARIANT_VIOLATION = 3

#: Fixed grid used by ``repro grid --smoke`` and as the ``repro bench``
#: default: 2 scenarios x 2 platforms x 3 schedulers = 12 cells, spanning a
#: baseline, a strong baseline and the full DREAM configuration.
SMOKE_GRID = {
    "scenarios": ["ar_call", "vr_gaming"],
    "platforms": ["4k_1ws_2os", "4k_2ws"],
    "schedulers": ["fcfs_dynamic", "planaria", "dream_full"],
}

#: Simulated window used by the smoke grid (short but non-trivial).
SMOKE_DURATION_MS = 400.0


def _split_names(values: Optional[Sequence[str]], default: Sequence[str]) -> list[str]:
    """Expand repeated/comma-separated name options into a flat list."""
    if not values:
        return list(default)
    names: list[str] = []
    for value in values:
        names.extend(part for part in value.split(",") if part)
    return names


def _jsonable(value):
    """Best-effort conversion of figure summaries to JSON-serializable data."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="serial",
        help="execution backend for grid cells (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for --backend process (default: CPU count)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-keyed result cache directory; cached cells are not re-run",
    )


def _make_store(args: argparse.Namespace) -> Optional[ResultStore]:
    return ResultStore(args.store) if args.store is not None else None


def _engine_kernel_kwargs(args: argparse.Namespace) -> dict[str, str]:
    """Extra engine kwargs for ``--kernel`` / ``--loop``.

    The default 'python' kernel and loop contribute nothing so default jobs
    keep their historical content-addressed store keys; 'vector' and
    'compiled' are validated here (usage error, exit 2) instead of crashing
    inside a worker.
    """
    kwargs: dict[str, str] = {}
    if args.kernel != "python":
        if args.kernel == "vector" and not HAVE_NUMPY:
            raise ValueError("kernel 'vector' requires numpy, which is not installed")
        kwargs["kernel"] = args.kernel
    loop = getattr(args, "loop", "python")
    if loop != "python":
        if loop == "compiled" and not fastloop_is_compiled():
            raise ValueError(
                "loop 'compiled' requires the mypyc-built fastloop extension "
                "(see docs/performance.md); use --loop fast instead"
            )
        kwargs["loop"] = loop
    resource_model = getattr(args, "resource_model", "pe_fraction")
    if resource_model != "pe_fraction":
        kwargs["resource_model"] = resource_model
    return kwargs


def _execute_and_report(jobs, args: argparse.Namespace) -> tuple[GridResult, float]:
    """Run cell jobs on the selected backend and print the UXCost table.

    Shared by ``repro grid`` and ``repro generate --run`` so both
    subcommands report identically (table format, throughput, store stats).
    With ``--latency`` a per-task table of the streamed latency quantiles
    (P² estimates of p50/p95/p99) is printed as well.
    """
    store = _make_store(args)
    started = time.perf_counter()
    results = execute_jobs(jobs, backend=args.backend, workers=args.workers, store=store)
    elapsed = time.perf_counter() - started
    grid = GridResult(results={job.cell: result for job, result in zip(jobs, results)})

    table = grid.uxcost_table()
    rows = [
        [config, scheduler, uxcost]
        for config, by_scheduler in sorted(table.items())
        for scheduler, uxcost in sorted(by_scheduler.items())
    ]
    print(format_table(["scenario/platform", "scheduler", "UXCost"], rows))
    if getattr(args, "latency", False):
        print()
        print(_latency_table(grid))
    print(f"done: {len(jobs)} cells in {elapsed:.2f} s ({len(jobs) / elapsed:.2f} cells/s)")
    if store is not None:
        print(f"store: {store.stats()}")
    return grid, elapsed


def _latency_table(grid: GridResult) -> str:
    """Per-task completed-frame latency quantiles across every grid cell."""
    rows = []
    for cell, result in sorted(grid.results.items(), key=lambda item: item[0].key):
        for task_name, stats in sorted(result.task_stats.items()):
            rows.append(
                [
                    cell.key,
                    task_name,
                    stats.completed_frames,
                    stats.mean_latency_ms,
                    stats.latency_quantile_ms("p50"),
                    stats.latency_quantile_ms("p95"),
                    stats.latency_quantile_ms("p99"),
                    stats.latency_max_ms,
                ]
            )
    return format_table(
        ["cell", "task", "done", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"],
        rows,
        float_format="{:.2f}",
    )


# --------------------------------------------------------------------- #
# repro list
# --------------------------------------------------------------------- #


def _cmd_list(args: argparse.Namespace) -> int:
    kernels = ", ".join(ENGINE_KERNELS)
    if not HAVE_NUMPY:
        kernels += " ('vector' unavailable: numpy not installed)"
    loops = ", ".join(available_loops())
    if not fastloop_is_compiled():
        loops += " ('compiled' unavailable: extension not built)"
    print("scenarios: ", ", ".join(scenario_names()))
    print("platforms: ", ", ".join(all_platform_names()))
    print("schedulers:", ", ".join(scheduler_names()))
    print("backends:  ", ", ".join(backend_names()))
    print("kernels:   ", kernels)
    print("loops:     ", loops)
    print("resources: ", ", ".join(resource_model_names()))
    print("traffic:   ", ", ".join(arrival_process_names()))
    print("figures:   ", ", ".join(sorted(figures_mod.ALL_FIGURES)))
    return 0


# --------------------------------------------------------------------- #
# repro grid
# --------------------------------------------------------------------- #


def _cmd_grid(args: argparse.Namespace) -> int:
    if args.smoke:
        scenarios = list(SMOKE_GRID["scenarios"])
        platforms = list(SMOKE_GRID["platforms"])
        schedulers = list(SMOKE_GRID["schedulers"])
        duration_ms = args.duration_ms if args.duration_ms is not None else SMOKE_DURATION_MS
    else:
        scenarios = _split_names(args.scenarios, scenario_names())
        platforms = _split_names(args.platforms, ["4k_1ws_2os"])
        schedulers = _split_names(args.schedulers, ["fcfs_dynamic", "planaria", "dream_full"])
        duration_ms = args.duration_ms if args.duration_ms is not None else 800.0

    cells = len(scenarios) * len(platforms) * len(schedulers)
    print(
        f"running {cells} cells ({len(scenarios)} scenarios x {len(platforms)} "
        f"platforms x {len(schedulers)} schedulers) on backend "
        f"{args.backend!r} (duration {duration_ms:g} ms, seed {args.seed})"
    )
    jobs = grid_jobs(
        scenarios,
        platforms,
        schedulers,
        duration_ms=duration_ms,
        seed=args.seed,
        cascade_probability=args.cascade_probability,
        **_engine_kernel_kwargs(args),
    )
    grid, elapsed = _execute_and_report(jobs, args)

    if args.json is not None:
        table = grid.uxcost_table()
        payload = {
            "grid": {
                "scenarios": scenarios,
                "platforms": platforms,
                "schedulers": schedulers,
                "duration_ms": duration_ms,
                "seed": args.seed,
                "cascade_probability": args.cascade_probability,
                "kernel": args.kernel,
                "loop": args.loop,
            },
            "backend": args.backend,
            "workers": args.workers,
            "wall_time_s": elapsed,
            "uxcost_table": table,
            "results": grid.to_dict(),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


# --------------------------------------------------------------------- #
# repro figure
# --------------------------------------------------------------------- #


def _figure_key(name: str) -> str:
    return name if name.startswith("figure") else f"figure{name}"


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "all":
        names = sorted(figures_mod.ALL_FIGURES)
    else:
        key = _figure_key(args.name)
        if key not in figures_mod.ALL_FIGURES:
            known = ", ".join(sorted(figures_mod.ALL_FIGURES))
            print(f"unknown figure {args.name!r}; available: {known}, all", file=sys.stderr)
            return 2
        names = [key]

    store = _make_store(args)
    with default_execution(backend=args.backend, workers=args.workers, store=store):
        for name in names:
            generator = figures_mod.ALL_FIGURES[name]
            kwargs = {"seed": args.seed}
            if args.duration_ms is not None:
                kwargs["duration_ms"] = args.duration_ms
            started = time.perf_counter()
            result = generator(**kwargs)
            elapsed = time.perf_counter() - started
            print(f"== {result.name}: {result.description} [{elapsed:.2f} s]")
            print(result.text)
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(result.text + "\n", encoding="utf-8")
                payload = {
                    "name": result.name,
                    "description": result.description,
                    "rows": _jsonable(result.rows),
                    "summary": _jsonable(result.summary),
                }
                (args.out / f"{name}.json").write_text(
                    json.dumps(payload, indent=2) + "\n", encoding="utf-8"
                )
                print(f"wrote {args.out / name}.{{txt,json}}")
    return 0


# --------------------------------------------------------------------- #
# repro bench
# --------------------------------------------------------------------- #


def _cmd_bench(args: argparse.Namespace) -> int:
    scenarios = _split_names(args.scenarios, SMOKE_GRID["scenarios"])
    platforms = _split_names(args.platforms, SMOKE_GRID["platforms"])
    schedulers = _split_names(args.schedulers, SMOKE_GRID["schedulers"])
    duration_ms = args.duration_ms if args.duration_ms is not None else 2000.0
    jobs = grid_jobs(
        scenarios, platforms, schedulers, duration_ms=duration_ms, seed=args.seed
    )
    cells = len(jobs)
    print(
        f"benchmarking {cells} cells (duration {duration_ms:g} ms) "
        f"serial vs process[{args.workers}]"
    )

    started = time.perf_counter()
    serial_grid = run_grid(
        scenarios, platforms, schedulers,
        duration_ms=duration_ms, seed=args.seed, backend="serial",
    )
    serial_s = time.perf_counter() - started
    print(f"serial:  {serial_s:.2f} s ({cells / serial_s:.2f} cells/s)")

    started = time.perf_counter()
    process_grid = run_grid(
        scenarios, platforms, schedulers,
        duration_ms=duration_ms, seed=args.seed,
        backend="process", workers=args.workers,
    )
    process_s = time.perf_counter() - started
    print(f"process: {process_s:.2f} s ({cells / process_s:.2f} cells/s)")

    parity = serial_grid.uxcost_table() == process_grid.uxcost_table()
    speedup = serial_s / process_s if process_s > 0 else 0.0
    print(f"parity:  {'OK (bit-for-bit)' if parity else 'MISMATCH'}")
    print(f"speedup: {speedup:.2f}x at {args.workers} workers")

    payload = {
        "benchmark": "grid_throughput",
        "repro_version": __version__,
        "grid": {
            "scenarios": scenarios,
            "platforms": platforms,
            "schedulers": schedulers,
            "duration_ms": duration_ms,
            "seed": args.seed,
        },
        "cells": cells,
        "workers": args.workers,
        "serial": {"wall_time_s": serial_s, "cells_per_sec": cells / serial_s},
        "process": {"wall_time_s": process_s, "cells_per_sec": cells / process_s},
        "speedup": speedup,
        "parity": parity,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not parity:
        print("error: serial and process backends disagree", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


# --------------------------------------------------------------------- #
# repro bench-engine
# --------------------------------------------------------------------- #


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from repro.experiments import benchmark as bench_mod

    if args.jobs < 1:
        raise ValueError("--jobs must be positive")
    if (args.profile is not None or args.profile_out is not None) and args.jobs > 1:
        # Usage error (exit 2 via main): cProfile instruments this process,
        # but with --jobs the timed passes run inside pool workers, so the
        # capture would be empty/misleading rather than merely slow.
        raise ValueError(
            "--profile/--profile-out requires --jobs 1: the cProfile capture "
            "instruments the current process, and with --jobs N the timed "
            "engine passes run inside worker processes it cannot see"
        )
    basket = bench_mod.quick_basket() if args.quick else bench_mod.default_basket()
    scenarios = _split_names(args.scenarios, basket["scenarios"])
    platforms = _split_names(args.platforms, basket["platforms"])
    schedulers = _scheduler_list(args.schedulers, basket["schedulers"])
    generated = args.generated if args.generated is not None else basket["generated"]
    duration_ms = args.duration_ms if args.duration_ms is not None else basket["duration_ms"]

    cells = (len(scenarios) * len(platforms) + generated) * len(schedulers)
    jobs = args.jobs
    print(
        f"bench-engine: {cells} cells ({len(scenarios)} scenarios x "
        f"{len(platforms)} platforms + {generated} generated) x "
        f"{len(schedulers)} schedulers, {duration_ms:g} ms each, "
        f"optimized vs reference engine"
        + (f", {jobs} parallel jobs" if jobs > 1 else "")
    )
    # --profile-out takes precedence; bare --profile keeps the historical
    # fixed dump path for quick interactive use.
    profile_path = args.profile_out if args.profile_out is not None else args.profile
    payload = bench_mod.run_engine_bench(
        scenarios=scenarios,
        platforms=platforms,
        schedulers=schedulers,
        generated=generated,
        duration_ms=duration_ms,
        seed=args.seed,
        profile_path=profile_path,
        jobs=jobs,
        repeats=args.repeats,
        kv_smoke=args.kv_smoke,
    )
    print(bench_mod.describe(payload))

    # Snapshot the baseline BEFORE writing --out: with the default --out the
    # two paths can be the same file, and the gate must compare against the
    # committed numbers, not the payload we are about to merge in.
    baseline = None
    if args.baseline is not None:
        try:
            baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"repro: error: cannot read {args.baseline}: {error}", file=sys.stderr)
            return 2

    # BENCH_engine.json holds one payload per basket label (full / quick /
    # custom) so the committed baseline can serve both the headline run and
    # the CI gate; merging preserves the other labels.
    label = args.label or ("quick" if args.quick else "full")
    merged: dict = {}
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if "totals" in existing:
                merged["full"] = existing
            else:
                merged.update(
                    {k: v for k, v in existing.items() if isinstance(v, dict) and "totals" in v}
                )
    merged[label] = payload
    args.out.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out} (label {label!r})")
    if profile_path is not None:
        print(f"wrote cProfile dump {profile_path} (inspect with pstats or snakeviz)")

    if not payload["parity"]:
        print("error: optimized and reference engines disagree", file=sys.stderr)
        return 1
    speedup = payload["totals"]["speedup"]
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if baseline is not None:
        warnings: list[str] = []
        problems = bench_mod.compare_to_baseline(
            payload, baseline, args.max_regression,
            max_round_regression=args.max_round_regression,
            warnings=warnings,
        )
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        matched = next(
            entry
            for entry in bench_mod.baseline_entries(baseline)
            if entry.get("basket") == payload.get("basket")
        )
        print(
            f"baseline check OK (speedup {speedup:.2f}x vs committed "
            f"{matched['totals']['speedup']:.2f}x, "
            f"allowed regression {args.max_regression:.0%})"
        )
    return 0


# --------------------------------------------------------------------- #
# repro generate / repro fuzz
# --------------------------------------------------------------------- #


def _add_generator_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--generator-seed", type=int, default=0, metavar="S",
        help="base seed of the scenario generator (default: 0)",
    )
    parser.add_argument(
        "--min-tasks", type=int, default=2, help="minimum tasks per scenario (default: 2)"
    )
    parser.add_argument(
        "--max-tasks", type=int, default=5, help="maximum tasks per scenario (default: 5)"
    )
    parser.add_argument(
        "--max-cascade-depth", type=int, default=2,
        help="maximum cascade-chain depth (0 disables cascades; default: 2)",
    )
    parser.add_argument(
        "--chain-probability", type=float, default=0.35,
        help="probability a task extends a cascade chain (default: 0.35)",
    )
    parser.add_argument(
        "--no-resolution-sweep", action="store_true",
        help="use each model's canonical input size instead of sweeping",
    )
    parser.add_argument(
        "--traffic", action="append", metavar="NAMES",
        help="traffic models sampled per generated head task ('all' or "
        "comma-separated from: " + ", ".join(arrival_process_names()) + "; "
        "default: periodic only)",
    )
    parser.add_argument(
        "--resource-model", choices=resource_model_names(), default="pe_fraction",
        help="execution-resource model of the generated scenarios: kv_batch "
        "samples a shared KV-cache budget and multi-turn interaction tasks "
        "(default: pe_fraction)",
    )


def _traffic_models(values: Optional[Sequence[str]]) -> tuple[str, ...]:
    return tuple(_expand_registry(values, ["periodic"], arrival_process_names))


def _generator_spec(args: argparse.Namespace) -> GeneratorSpec:
    return GeneratorSpec(
        seed=args.generator_seed,
        min_tasks=args.min_tasks,
        max_tasks=args.max_tasks,
        max_cascade_depth=args.max_cascade_depth,
        chain_probability=args.chain_probability,
        resolution_sweep=not args.no_resolution_sweep,
        traffic_models=_traffic_models(args.traffic),
        resource_model=getattr(args, "resource_model", "pe_fraction"),
    )


def _expand_registry(
    values: Optional[Sequence[str]], default: Sequence[str], registry_names
) -> list[str]:
    """Expand name options, with ``all`` meaning every registered name."""
    names = _split_names(values, default)
    if "all" in names:
        return list(registry_names())
    return names


def _scheduler_list(values: Optional[Sequence[str]], default: Sequence[str]) -> list[str]:
    return _expand_registry(values, default, scheduler_names)


def _kernel_list(values: Optional[Sequence[str]]) -> list[str]:
    """Expand the fuzz ``--kernels`` axis ('all' = every decision path).

    The 'vector' path needs numpy; an explicit request fails here (usage
    error, exit 2) — that beats eight identical per-scheduler harness
    errors later — while ``all`` degrades gracefully: the vector axis is
    skipped with a visible notice so the sweep still covers every path
    the interpreter can actually run.
    """
    names = _split_names(values, ["python"])
    expanded_all = "all" in names
    kernels = list(KERNEL_AXIS_NAMES) if expanded_all else names
    for kernel in kernels:
        if kernel not in KERNEL_AXIS_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from "
                f"{', '.join(KERNEL_AXIS_NAMES)} (or 'all')"
            )
    if "vector" in kernels and not HAVE_NUMPY:
        if not expanded_all:
            raise ValueError("kernel 'vector' requires numpy, which is not installed")
        kernels = [kernel for kernel in kernels if kernel != "vector"]
        print(
            "notice: skipping kernel 'vector' (numpy is not installed); "
            f"testing {'+'.join(kernels)}"
        )
    return kernels


def _loop_list(values: Optional[Sequence[str]]) -> list[str]:
    """Expand the fuzz ``--loops`` axis ('all' = every runnable event loop).

    Mirrors :func:`_kernel_list`: an explicit ``compiled`` without the
    mypyc extension is a usage error (exit 2), while ``all`` skips it with
    a visible notice and still cross-checks python vs fast.
    """
    names = _split_names(values, ["python"])
    expanded_all = "all" in names
    loops = list(ENGINE_LOOPS) if expanded_all else names
    for loop in loops:
        if loop not in ENGINE_LOOPS:
            raise ValueError(
                f"unknown loop {loop!r}; choose from "
                f"{', '.join(ENGINE_LOOPS)} (or 'all')"
            )
    if "compiled" in loops and not fastloop_is_compiled():
        if not expanded_all:
            raise ValueError(
                "loop 'compiled' requires the mypyc-built fastloop extension "
                "(see docs/performance.md)"
            )
        loops = [loop for loop in loops if loop != "compiled"]
        print(
            "notice: skipping loop 'compiled' (fastloop extension not built); "
            f"testing {'+'.join(loops)}"
        )
    return loops


def _resource_model_list(values: Optional[Sequence[str]]) -> list[str]:
    """Expand the fuzz ``--resource-models`` axis ('all' = every model).

    Unlike kernels/loops every resource model is always runnable (pure
    Python), so this only validates names; unknown names are usage errors
    (exit 2) with the sorted registry in the message.
    """
    names = _split_names(values, ["pe_fraction"])
    models = list(RESOURCE_MODEL_AXIS_NAMES) if "all" in names else names
    for model in models:
        if model not in RESOURCE_MODEL_AXIS_NAMES:
            raise ValueError(
                f"unknown resource model {model!r}; choose from "
                f"{', '.join(sorted(RESOURCE_MODEL_AXIS_NAMES))} (or 'all')"
            )
    return models


def _fault_list(values: Optional[Sequence[str]]) -> list[str]:
    """Expand the fuzz ``--faults`` chaos axis ('all' = every fault kind).

    Every fault kind is always runnable (pure Python on the default event
    loop), so this only validates names; unknown names are usage errors
    (exit 2) with the registry in the message.  The default is *no*
    injection — chaos runs are opt-in.
    """
    names = _split_names(values, [])
    kinds = list(FAULT_AXIS_NAMES) if "all" in names else names
    for kind in kinds:
        if kind not in FAULT_AXIS_NAMES:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from "
                f"{', '.join(sorted(FAULT_AXIS_NAMES))} (or 'all')"
            )
    return kinds


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = _generator_spec(args)
    generator = ScenarioGenerator(spec)
    scenarios = [generator.generate(index) for index in range(args.count)]
    for scenario in scenarios:
        print(scenario.describe())
        print()
    if args.spec_out is not None:
        payload = {"generator": spec.to_dict(), "count": args.count}
        args.spec_out.parent.mkdir(parents=True, exist_ok=True)
        args.spec_out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.spec_out}")
    if not args.run:
        return 0

    schedulers = _scheduler_list(args.schedulers, ["fcfs_dynamic", "planaria", "dream_full"])
    platforms = _split_names(args.platforms, ["4k_1ws_2os"])
    duration_ms = args.duration_ms if args.duration_ms is not None else 400.0
    jobs = generated_cell_jobs(
        spec, args.count, platforms, schedulers,
        duration_ms=duration_ms, seed=args.seed,
        **_engine_kernel_kwargs(args),
    )
    print(
        f"running {len(jobs)} generated cells ({args.count} scenarios x "
        f"{len(platforms)} platforms x {len(schedulers)} schedulers) on backend "
        f"{args.backend!r}"
    )
    _execute_and_report(jobs, args)
    return 0


def _print_fuzz_report(report) -> None:
    print(report.describe())


def _cmd_fuzz(args: argparse.Namespace) -> int:
    schedulers = _scheduler_list(args.schedulers, scheduler_names())
    # None = "not given": a replay then honours the artifact's own axes.
    kernels = _kernel_list(args.kernels) if args.kernels else None
    loops = _loop_list(args.loops) if args.loops else None
    resource_models = (
        _resource_model_list(args.resource_models) if args.resource_models else None
    )
    faults = _fault_list(args.faults) if args.faults else None
    duration_ms = args.duration_ms if args.duration_ms is not None else 400.0

    if args.replay is not None:
        try:
            artifact = json.loads(args.replay.read_text(encoding="utf-8"))
        except OSError as error:
            print(f"repro: error: cannot read {args.replay}: {error}", file=sys.stderr)
            return 2
        try:
            report = replay_artifact(
                artifact,
                schedulers=args.schedulers and schedulers,
                kernels=kernels,
                loops=loops,
                resource_models=resource_models,
                faults=faults,
            )
        except ValueError:
            # Malformed artifact (e.g. no generator spec): a usage error —
            # main() maps ValueError to exit 2, like other bad inputs.
            raise
        except Exception as error:  # noqa: BLE001 - harness error, exit 1
            print(f"repro fuzz: harness error during replay: {error}", file=sys.stderr)
            return 1
        _print_fuzz_report(report)
        if report.harness_errors:
            return 1
        return 0 if report.ok else EXIT_INVARIANT_VIOLATION

    if args.seeds < 1:
        # Usage error (exit 2 via main's handler), NOT a harness error: the
        # broad except below must only classify engine/scheduler crashes.
        raise ValueError("--seeds must be positive")
    spec = _generator_spec(args)
    kernels = kernels or ["python"]
    loops = loops or ["python"]
    resource_models = resource_models or ["pe_fraction"]
    faults = faults or []
    if "kv_batch" in resource_models and spec.resource_model == "pe_fraction":
        # The kv axis is only interesting on kv-flavoured scenarios (shared
        # KV budgets, interaction chains), so upgrade the generator spec.
        spec = _dc_replace(spec, resource_model="kv_batch")
        print("notice: --resource-models includes kv_batch; generating kv_batch scenarios")
    axis = f" x kernels {'+'.join(kernels)}" if len(kernels) > 1 else ""
    if len(loops) > 1:
        axis += f" x loops {'+'.join(loops)}"
    if len(resource_models) > 1:
        axis += f" x resources {'+'.join(resource_models)}"
    if faults:
        axis += f" x faults {'+'.join(faults)}"
    print(
        f"fuzzing {args.seeds} generated scenario(s) (generator seed "
        f"{spec.seed}) x {len(schedulers)} schedulers{axis} on {args.platform} "
        f"({duration_ms:g} ms, sim seed {args.seed})"
    )
    try:
        fuzz = run_fuzz(
            spec,
            count=args.seeds,
            schedulers=schedulers,
            platform=args.platform,
            duration_ms=duration_ms,
            seed=args.seed,
            kernels=kernels,
            loops=loops,
            resource_models=resource_models,
            faults=faults,
        )
    except Exception as error:  # noqa: BLE001 - harness error, exit 1
        print(f"repro fuzz: harness error: {error}", file=sys.stderr)
        return 1

    for report in fuzz.reports:
        _print_fuzz_report(report)
    print(fuzz.summary())

    needs_artifacts = fuzz.failing or fuzz.erroneous
    if args.artifacts is not None and needs_artifacts:
        args.artifacts.mkdir(parents=True, exist_ok=True)
        for report in fuzz.reports:
            if report.ok and not report.harness_errors:
                continue
            path = args.artifacts / f"{report.scenario_name}.json"
            path.write_text(
                json.dumps(report.to_artifact(), indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote failing scenario artifact {path}")

    if fuzz.erroneous:
        print("repro fuzz: harness error(s) — see report above", file=sys.stderr)
        return 1
    if fuzz.failing:
        print("repro fuzz: invariant/metamorphic violation(s)", file=sys.stderr)
        return EXIT_INVARIANT_VIOLATION
    return 0


# --------------------------------------------------------------------- #
# repro fleet
# --------------------------------------------------------------------- #

#: Default heterogeneous fleet of ``repro fleet`` when no spec is given:
#: three platforms mixing accelerator presets and schedulers.
DEFAULT_FLEET_PLATFORMS = ["4k_2ws", "4k_1ws_2os", "8k_2os"]
DEFAULT_FLEET_SCHEDULERS = ["fcfs_dynamic", "dream_full", "dream_mapscore"]


def _add_fleet_spec_options(parser: argparse.ArgumentParser) -> None:
    """Options that define a FleetSpec inline (or load one from JSON)."""
    parser.add_argument(
        "--spec", type=Path, default=None, metavar="SPEC.json",
        help="load the full FleetSpec from JSON (other spec options are ignored)",
    )
    parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform presets (repeatable; default: "
        + ",".join(DEFAULT_FLEET_PLATFORMS) + ")",
    )
    parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="schedulers paired with --platforms, cycled when shorter "
        "(default: " + ",".join(DEFAULT_FLEET_SCHEDULERS) + ")",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=2, metavar="N",
        help="concurrent-session capacity of each platform (default: 2)",
    )
    parser.add_argument(
        "--policy", choices=routing_policy_names(), default="least_loaded",
        help="routing/admission policy (default: least_loaded)",
    )
    parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario presets, one user population each "
        "(default: ar_call,vr_gaming)",
    )
    parser.add_argument(
        "--users", type=int, default=2, metavar="N",
        help="users per population (default: 2)",
    )
    parser.add_argument(
        "--session-rate", type=float, default=120.0, metavar="R",
        help="session arrivals per minute per user (default: 120)",
    )
    parser.add_argument(
        "--session-ms", type=float, default=200.0, metavar="MS",
        help="simulated window of one admitted session (default: 200)",
    )
    parser.add_argument(
        "--traffic", choices=arrival_process_names(), default=None,
        help="session-arrival process per user (default: periodic, no jitter)",
    )
    parser.add_argument(
        "--duration-ms", type=float, default=1000.0,
        help="fleet-clock window over which sessions arrive (default: 1000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="fleet master seed")
    parser.add_argument(
        "--spec-out", type=Path, default=None, metavar="PATH",
        help="write the resolved FleetSpec as JSON for replay/sharing",
    )


def _fleet_spec(args: argparse.Namespace) -> FleetSpec:
    """Resolve the FleetSpec from ``--spec`` or the inline options."""
    if args.spec is not None:
        try:
            payload = json.loads(args.spec.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot read fleet spec {args.spec}: {error}") from error
        return FleetSpec.from_dict(payload)
    platforms = _split_names(args.platforms, DEFAULT_FLEET_PLATFORMS)
    schedulers = _split_names(args.schedulers, DEFAULT_FLEET_SCHEDULERS)
    traffic = make_arrival_process(args.traffic) if args.traffic else None
    return FleetSpec(
        platforms=tuple(
            PlatformSpec(
                platform=platform,
                scheduler=schedulers[index % len(schedulers)],
                max_sessions=args.max_sessions,
            )
            for index, platform in enumerate(platforms)
        ),
        users=tuple(
            UserSpec(
                name=scenario,
                users=args.users,
                scenario=scenario,
                sessions_per_minute=args.session_rate,
                session_duration_ms=args.session_ms,
                traffic=traffic,
            )
            for scenario in _split_names(args.scenarios, ["ar_call", "vr_gaming"])
        ),
        policy=args.policy,
        duration_ms=args.duration_ms,
        seed=args.seed,
    )


def _write_fleet_spec(spec: FleetSpec, args: argparse.Namespace) -> None:
    if args.spec_out is not None:
        args.spec_out.parent.mkdir(parents=True, exist_ok=True)
        args.spec_out.write_text(
            json.dumps(spec.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.spec_out}")


def _cmd_fleet_describe(args: argparse.Namespace) -> int:
    spec = _fleet_spec(args)
    _write_fleet_spec(spec, args)
    print(
        f"fleet spec: {len(spec.platforms)} platforms, "
        f"{len(spec.users)} populations ({spec.total_users} users), "
        f"policy={spec.policy}, {spec.duration_ms:g} ms, seed {spec.seed}"
    )
    for index, (platform, label) in enumerate(zip(spec.platforms, spec.platform_labels())):
        print(
            f"  platform[{index}] {label}: {platform.platform} + "
            f"{platform.scheduler}, capacity {platform.max_sessions}"
        )
    for population in spec.users:
        traffic = population.traffic.kind if population.traffic else "periodic"
        print(
            f"  population {population.name}: {population.users} users x "
            f"{population.scenario}, {population.sessions_per_minute:g} "
            f"sessions/min, {population.session_duration_ms:g} ms each, "
            f"traffic={traffic}"
        )
    plan = FleetSimulator(spec).plan()
    counts = plan.outcome_counts()
    print(
        f"admission plan: {plan.submitted} session requests -> "
        + ", ".join(f"{outcome}={count}" for outcome, count in sorted(counts.items()))
    )
    per_platform = [0] * len(spec.platforms)
    for job in plan.jobs:
        per_platform[job.platform_index] += 1
    for index, label in enumerate(spec.platform_labels()):
        print(f"  platform[{index}] {label}: {per_platform[index]} sessions")
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    spec = _fleet_spec(args)
    _write_fleet_spec(spec, args)
    print(
        f"running fleet: {len(spec.platforms)} platforms, {spec.total_users} "
        f"users, policy={spec.policy!r} on backend {args.backend!r} "
        f"({spec.duration_ms:g} ms, seed {spec.seed})"
    )
    store = _make_store(args)
    started = time.perf_counter()
    result = simulate_fleet(
        spec, backend=args.backend, workers=args.workers, store=store
    )
    elapsed = time.perf_counter() - started
    print(result.describe())
    sessions = max(result.admitted, 1)
    print(
        f"done: {result.admitted} session simulations in {elapsed:.2f} s "
        f"({result.admitted / elapsed:.2f} sessions/s)"
        if elapsed > 0
        else f"done: {sessions} session simulations"
    )
    if store is not None:
        print(f"store: {store.stats()}")
    if args.json is not None:
        args.json.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}")
    if not args.no_oracle:
        violations = audit_fleet(result)
        if violations:
            print(
                f"repro fleet: {len(violations)} fleet invariant violation(s):",
                file=sys.stderr,
            )
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return EXIT_INVARIANT_VIOLATION
        print("fleet oracle: OK (session conservation, routing, admission, frames)")
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiment grids, figures and benchmarks.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list every known preset name")
    list_parser.set_defaults(func=_cmd_list)

    grid_parser = subparsers.add_parser(
        "grid", help="run a scenario x platform x scheduler grid"
    )
    grid_parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario names (repeatable; default: all)",
    )
    grid_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform names (repeatable; default: 4k_1ws_2os)",
    )
    grid_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="comma-separated scheduler names (repeatable; "
        "default: fcfs_dynamic,planaria,dream_full)",
    )
    grid_parser.add_argument(
        "--duration-ms", type=float, default=None, help="simulated window per cell"
    )
    grid_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    grid_parser.add_argument(
        "--cascade-probability", type=float, default=0.5,
        help="ML-cascade trigger probability (default: 0.5)",
    )
    grid_parser.add_argument(
        "--smoke", action="store_true",
        help=f"use the fixed CI smoke grid ({'x'.join(str(len(v)) for v in SMOKE_GRID.values())} "
        f"cells at {SMOKE_DURATION_MS:g} ms)",
    )
    grid_parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full grid result (uxcost table + per-cell stats) as JSON",
    )
    grid_parser.add_argument(
        "--latency", action="store_true",
        help="also print per-task streamed latency quantiles (p50/p95/p99)",
    )
    grid_parser.add_argument(
        "--kernel", choices=ENGINE_KERNELS, default="python",
        help="decision kernel of the simulation engine; 'vector' evaluates "
        "large DREAM scheduling rounds through the NumPy kernel, "
        "bit-for-bit identical to 'python' (default: python)",
    )
    grid_parser.add_argument(
        "--loop", choices=ENGINE_LOOPS, default="python",
        help="event loop of the simulation engine; 'fast' is the "
        "struct-of-arrays rewrite, 'compiled' its mypyc build (requires "
        "the compiled extension), both bit-for-bit identical to 'python' "
        "(default: python)",
    )
    grid_parser.add_argument(
        "--resource-model", choices=resource_model_names(), default="pe_fraction",
        help="execution-resource model of every accelerator: 'pe_fraction' "
        "is the paper's spatially-partitioned PE array, 'kv_batch' a shared "
        "KV-cache memory budget with continuous-batching latency dilation "
        "(default: pe_fraction)",
    )
    _add_execution_options(grid_parser)
    grid_parser.set_defaults(func=_cmd_grid)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one evaluation figure (2,7-14) or 'all'"
    )
    figure_parser.add_argument(
        "name", help="figure number (e.g. 7), name (figure7), or 'all'"
    )
    figure_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="override the figure's default simulated window",
    )
    figure_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    figure_parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="write <figure>.txt and <figure>.json into this directory",
    )
    _add_execution_options(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    bench_parser = subparsers.add_parser(
        "bench", help="time serial vs process execution and emit BENCH_grid.json"
    )
    bench_parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="comma-separated scheduler names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated window per cell (default: 2000)",
    )
    bench_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    bench_parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="process-pool size to benchmark against (default: 4)",
    )
    bench_parser.add_argument(
        "--out", type=Path, default=Path("BENCH_grid.json"), metavar="PATH",
        help="machine-readable output file (default: BENCH_grid.json)",
    )
    bench_parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless the process backend is at least X times faster",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    bench_engine_parser = subparsers.add_parser(
        "bench-engine",
        help="time the simulation hot loop (optimized vs reference engine, events/sec)",
    )
    bench_engine_parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario names (default: the Table-3 grid)",
    )
    bench_engine_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform names (default: 4k_1ws_2os,4k_2ws)",
    )
    bench_engine_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="schedulers to bench ('all' or comma-separated; default: all)",
    )
    bench_engine_parser.add_argument(
        "--generated", type=int, default=None, metavar="N",
        help="generated scenarios appended to the basket (default: 3; 2 with --quick)",
    )
    bench_engine_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated window per cell (default: 2000; 400 with --quick)",
    )
    bench_engine_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    bench_engine_parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized basket: 2 scenarios x 1 platform + 2 generated at 400 ms",
    )
    bench_engine_parser.add_argument(
        "--out", type=Path, default=Path("BENCH_engine.json"), metavar="PATH",
        help="machine-readable output file; payloads merge under their basket "
        "label (default: BENCH_engine.json)",
    )
    bench_engine_parser.add_argument(
        "--label", default=None, metavar="NAME",
        help="basket label in the output file (default: 'quick' with --quick, else 'full')",
    )
    bench_engine_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run cells through the process execution backend with N workers "
        "(default: 1 = serial; per-cell timings are measured inside each "
        "worker, so on a single-core container N>1 makes them contend — "
        "use >1 on multi-core hosts such as the 4-vCPU CI runners)",
    )
    bench_engine_parser.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="runs per cell per engine; the minimum wall time is recorded "
        "(noise-robust — use 2-3 when regenerating a committed baseline; "
        "default: 1)",
    )
    bench_engine_parser.add_argument(
        "--profile", type=Path, nargs="?", const=Path("bench_engine.prof"),
        default=None, metavar="PATH",
        help="dump a cProfile capture of the optimized passes (fixed "
        "default path bench_engine.prof when no PATH is given; requires "
        "--jobs 1)",
    )
    bench_engine_parser.add_argument(
        "--profile-out", type=Path, default=None, metavar="PATH",
        help="explicit path for the cProfile dump (overrides --profile)",
    )
    bench_engine_parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless the optimized engine is at least X times faster",
    )
    bench_engine_parser.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="committed BENCH_engine.json to gate regressions against",
    )
    bench_engine_parser.add_argument(
        "--max-regression", type=float, default=0.2, metavar="F",
        help="allowed fractional throughput regression vs --baseline (default: 0.2)",
    )
    bench_engine_parser.add_argument(
        "--max-round-regression", type=float, default=0.1, metavar="F",
        help="allowed fractional growth of the fast engine's schedule() "
        "call count vs --baseline (deterministic per basket; default: 0.1)",
    )
    bench_engine_parser.add_argument(
        "--kv-smoke", action="store_true",
        help="also time a small kv_batch (KV-cache/continuous-batching) "
        "basket; recorded under a separate 'kv_smoke' payload key and "
        "never gated by --baseline",
    )
    bench_engine_parser.set_defaults(func=_cmd_bench_engine)

    generate_parser = subparsers.add_parser(
        "generate", help="sample randomized scenarios from the model zoo"
    )
    generate_parser.add_argument(
        "--count", type=int, default=3, metavar="N",
        help="number of scenarios to generate (default: 3)",
    )
    _add_generator_options(generate_parser)
    generate_parser.add_argument(
        "--spec-out", type=Path, default=None, metavar="PATH",
        help="write the generator spec (JSON) for later replay/sharing",
    )
    generate_parser.add_argument(
        "--run", action="store_true",
        help="also run the generated scenarios as a grid on the chosen backend",
    )
    generate_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="schedulers for --run ('all' or comma-separated; "
        "default: fcfs_dynamic,planaria,dream_full)",
    )
    generate_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="platforms for --run (default: 4k_1ws_2os)",
    )
    generate_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated window per cell for --run (default: 400)",
    )
    generate_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    generate_parser.add_argument(
        "--latency", action="store_true",
        help="with --run: also print per-task streamed latency quantiles",
    )
    generate_parser.add_argument(
        "--kernel", choices=ENGINE_KERNELS, default="python",
        help="decision kernel for --run (see 'repro grid --kernel'; "
        "default: python)",
    )
    generate_parser.add_argument(
        "--loop", choices=ENGINE_LOOPS, default="python",
        help="event loop for --run (see 'repro grid --loop'; default: python)",
    )
    _add_execution_options(generate_parser)
    generate_parser.set_defaults(func=_cmd_generate)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="cross-scheduler differential testing with the trace-invariant oracle",
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=5, metavar="N",
        help="number of generated scenarios to sweep (default: 5)",
    )
    _add_generator_options(fuzz_parser)
    fuzz_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="schedulers to differential-test ('all' or comma-separated; default: all)",
    )
    fuzz_parser.add_argument(
        "--kernels", action="append", metavar="NAMES",
        help="decision paths to cross-check per scheduler: python, vector, "
        "reference ('all' or comma-separated; the first is the canonical "
        "run, any divergence on the others is a kernel_parity violation; "
        "default: python)",
    )
    fuzz_parser.add_argument(
        "--loops", action="append", metavar="NAMES",
        help="event loops to cross-check per scheduler: python, fast, "
        "compiled ('all' or comma-separated; the first is the canonical "
        "run, any divergence on the others is a loop_parity violation; "
        "'all' skips 'compiled' with a notice when the extension is not "
        "built; default: python)",
    )
    fuzz_parser.add_argument(
        "--resource-models", action="append", metavar="NAMES",
        help="execution-resource models to audit per scheduler ('all' or "
        "comma-separated: pe_fraction, kv_batch; the first is the canonical "
        "run, the others get a full invariant audit of their own physics — "
        "no cross-model parity is asserted; includes kv_batch scenarios "
        "when requested; default: pe_fraction)",
    )
    fuzz_parser.add_argument(
        "--faults", action="append", metavar="KINDS",
        help="chaos axis: fault kinds to inject per scheduler ('all' or "
        "comma-separated: accel_degrade, platform_outage, transient_stall; "
        "each kind samples a deterministic fault plan from the sim seed and "
        "re-runs every scheduler under the full oracle including the "
        "fault-specific invariants; default: no injection)",
    )
    fuzz_parser.add_argument(
        "--platform", default="4k_1ws_2os",
        help="platform preset shared by every run (default: 4k_1ws_2os)",
    )
    fuzz_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated window per run (default: 400)",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    fuzz_parser.add_argument(
        "--artifacts", type=Path, default=None, metavar="DIR",
        help="write failing scenario specs (replayable JSON) into this directory",
    )
    fuzz_parser.add_argument(
        "--replay", type=Path, default=None, metavar="SPEC.json",
        help="re-run one stored failing-scenario artifact instead of fuzzing",
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="simulate a fleet of platforms behind a routing/admission tier",
    )
    fleet_subparsers = fleet_parser.add_subparsers(dest="fleet_command", required=True)

    fleet_run_parser = fleet_subparsers.add_parser(
        "run", help="plan admissions, simulate every session, aggregate + audit"
    )
    _add_fleet_spec_options(fleet_run_parser)
    fleet_run_parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full fleet result (trace, per-user/platform stats) as JSON",
    )
    fleet_run_parser.add_argument(
        "--no-oracle", action="store_true",
        help="skip the fleet invariant oracle (exit 3 on violations otherwise)",
    )
    _add_execution_options(fleet_run_parser)
    fleet_run_parser.set_defaults(func=_cmd_fleet_run)

    fleet_describe_parser = fleet_subparsers.add_parser(
        "describe", help="show the resolved spec and admission plan (no simulations)"
    )
    _add_fleet_spec_options(fleet_describe_parser)
    fleet_describe_parser.set_defaults(func=_cmd_fleet_describe)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (``repro`` in ``pyproject.toml``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        # Unknown preset names and invalid option values raise with a
        # message that already lists the alternatives; show it without a
        # traceback.
        message = error.args[0] if error.args else str(error)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
