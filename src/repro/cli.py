"""``repro`` — the console entry point of the reproduction.

Subcommands:

* ``repro list`` — every scenario, platform, scheduler, backend and figure
  preset the harness knows about.
* ``repro grid`` — run a (scenario x platform x scheduler) grid on a chosen
  execution backend, print the paper-style UXCost table, optionally
  persisting results (``--store``) and dumping structured JSON (``--json``).
  ``--smoke`` selects the small fixed grid CI uses for backend parity.
* ``repro figure N`` — regenerate one evaluation figure (or ``all``),
  routed through the selected backend via
  :func:`repro.experiments.harness.default_execution`.
* ``repro bench`` — time the same grid on the serial and process backends,
  assert bit-for-bit parity, and emit a machine-readable ``BENCH_grid.json``
  (cells/sec, wall times, speedup) so perf trajectories persist across PRs.

Every subcommand is importable and drives the same public harness API the
tests use; the CLI adds no simulation logic of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.experiments import figures as figures_mod
from repro.experiments.backends import backend_names
from repro.experiments.harness import default_execution, run_grid
from repro.experiments.jobs import grid_jobs
from repro.experiments.store import ResultStore
from repro.hardware.platform import all_platform_names
from repro.metrics.reporting import format_table
from repro.schedulers import scheduler_names
from repro.workloads import scenario_names

#: Fixed grid used by ``repro grid --smoke`` and as the ``repro bench``
#: default: 2 scenarios x 2 platforms x 3 schedulers = 12 cells, spanning a
#: baseline, a strong baseline and the full DREAM configuration.
SMOKE_GRID = {
    "scenarios": ["ar_call", "vr_gaming"],
    "platforms": ["4k_1ws_2os", "4k_2ws"],
    "schedulers": ["fcfs_dynamic", "planaria", "dream_full"],
}

#: Simulated window used by the smoke grid (short but non-trivial).
SMOKE_DURATION_MS = 400.0


def _split_names(values: Optional[Sequence[str]], default: Sequence[str]) -> list[str]:
    """Expand repeated/comma-separated name options into a flat list."""
    if not values:
        return list(default)
    names: list[str] = []
    for value in values:
        names.extend(part for part in value.split(",") if part)
    return names


def _jsonable(value):
    """Best-effort conversion of figure summaries to JSON-serializable data."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="serial",
        help="execution backend for grid cells (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for --backend process (default: CPU count)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-keyed result cache directory; cached cells are not re-run",
    )


def _make_store(args: argparse.Namespace) -> Optional[ResultStore]:
    return ResultStore(args.store) if args.store is not None else None


# --------------------------------------------------------------------- #
# repro list
# --------------------------------------------------------------------- #


def _cmd_list(args: argparse.Namespace) -> int:
    print("scenarios: ", ", ".join(scenario_names()))
    print("platforms: ", ", ".join(all_platform_names()))
    print("schedulers:", ", ".join(scheduler_names()))
    print("backends:  ", ", ".join(backend_names()))
    print("figures:   ", ", ".join(sorted(figures_mod.ALL_FIGURES)))
    return 0


# --------------------------------------------------------------------- #
# repro grid
# --------------------------------------------------------------------- #


def _cmd_grid(args: argparse.Namespace) -> int:
    if args.smoke:
        scenarios = list(SMOKE_GRID["scenarios"])
        platforms = list(SMOKE_GRID["platforms"])
        schedulers = list(SMOKE_GRID["schedulers"])
        duration_ms = args.duration_ms if args.duration_ms is not None else SMOKE_DURATION_MS
    else:
        scenarios = _split_names(args.scenarios, scenario_names())
        platforms = _split_names(args.platforms, ["4k_1ws_2os"])
        schedulers = _split_names(args.schedulers, ["fcfs_dynamic", "planaria", "dream_full"])
        duration_ms = args.duration_ms if args.duration_ms is not None else 800.0

    cells = len(scenarios) * len(platforms) * len(schedulers)
    print(
        f"running {cells} cells ({len(scenarios)} scenarios x {len(platforms)} "
        f"platforms x {len(schedulers)} schedulers) on backend "
        f"{args.backend!r} (duration {duration_ms:g} ms, seed {args.seed})"
    )
    store = _make_store(args)
    started = time.perf_counter()
    grid = run_grid(
        scenarios=scenarios,
        platforms=platforms,
        schedulers=schedulers,
        duration_ms=duration_ms,
        seed=args.seed,
        cascade_probability=args.cascade_probability,
        backend=args.backend,
        workers=args.workers,
        store=store,
    )
    elapsed = time.perf_counter() - started

    table = grid.uxcost_table()
    rows = [
        [config, scheduler, uxcost]
        for config, by_scheduler in sorted(table.items())
        for scheduler, uxcost in sorted(by_scheduler.items())
    ]
    print(format_table(["scenario/platform", "scheduler", "UXCost"], rows))
    print(f"done: {cells} cells in {elapsed:.2f} s ({cells / elapsed:.2f} cells/s)")
    if store is not None:
        print(f"store: {store.stats()}")

    if args.json is not None:
        payload = {
            "grid": {
                "scenarios": scenarios,
                "platforms": platforms,
                "schedulers": schedulers,
                "duration_ms": duration_ms,
                "seed": args.seed,
                "cascade_probability": args.cascade_probability,
            },
            "backend": args.backend,
            "workers": args.workers,
            "wall_time_s": elapsed,
            "uxcost_table": table,
            "results": grid.to_dict(),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


# --------------------------------------------------------------------- #
# repro figure
# --------------------------------------------------------------------- #


def _figure_key(name: str) -> str:
    return name if name.startswith("figure") else f"figure{name}"


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "all":
        names = sorted(figures_mod.ALL_FIGURES)
    else:
        key = _figure_key(args.name)
        if key not in figures_mod.ALL_FIGURES:
            known = ", ".join(sorted(figures_mod.ALL_FIGURES))
            print(f"unknown figure {args.name!r}; available: {known}, all", file=sys.stderr)
            return 2
        names = [key]

    store = _make_store(args)
    with default_execution(backend=args.backend, workers=args.workers, store=store):
        for name in names:
            generator = figures_mod.ALL_FIGURES[name]
            kwargs = {"seed": args.seed}
            if args.duration_ms is not None:
                kwargs["duration_ms"] = args.duration_ms
            started = time.perf_counter()
            result = generator(**kwargs)
            elapsed = time.perf_counter() - started
            print(f"== {result.name}: {result.description} [{elapsed:.2f} s]")
            print(result.text)
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(result.text + "\n", encoding="utf-8")
                payload = {
                    "name": result.name,
                    "description": result.description,
                    "rows": _jsonable(result.rows),
                    "summary": _jsonable(result.summary),
                }
                (args.out / f"{name}.json").write_text(
                    json.dumps(payload, indent=2) + "\n", encoding="utf-8"
                )
                print(f"wrote {args.out / name}.{{txt,json}}")
    return 0


# --------------------------------------------------------------------- #
# repro bench
# --------------------------------------------------------------------- #


def _cmd_bench(args: argparse.Namespace) -> int:
    scenarios = _split_names(args.scenarios, SMOKE_GRID["scenarios"])
    platforms = _split_names(args.platforms, SMOKE_GRID["platforms"])
    schedulers = _split_names(args.schedulers, SMOKE_GRID["schedulers"])
    duration_ms = args.duration_ms if args.duration_ms is not None else 2000.0
    jobs = grid_jobs(
        scenarios, platforms, schedulers, duration_ms=duration_ms, seed=args.seed
    )
    cells = len(jobs)
    print(
        f"benchmarking {cells} cells (duration {duration_ms:g} ms) "
        f"serial vs process[{args.workers}]"
    )

    started = time.perf_counter()
    serial_grid = run_grid(
        scenarios, platforms, schedulers,
        duration_ms=duration_ms, seed=args.seed, backend="serial",
    )
    serial_s = time.perf_counter() - started
    print(f"serial:  {serial_s:.2f} s ({cells / serial_s:.2f} cells/s)")

    started = time.perf_counter()
    process_grid = run_grid(
        scenarios, platforms, schedulers,
        duration_ms=duration_ms, seed=args.seed,
        backend="process", workers=args.workers,
    )
    process_s = time.perf_counter() - started
    print(f"process: {process_s:.2f} s ({cells / process_s:.2f} cells/s)")

    parity = serial_grid.uxcost_table() == process_grid.uxcost_table()
    speedup = serial_s / process_s if process_s > 0 else 0.0
    print(f"parity:  {'OK (bit-for-bit)' if parity else 'MISMATCH'}")
    print(f"speedup: {speedup:.2f}x at {args.workers} workers")

    payload = {
        "benchmark": "grid_throughput",
        "repro_version": __version__,
        "grid": {
            "scenarios": scenarios,
            "platforms": platforms,
            "schedulers": schedulers,
            "duration_ms": duration_ms,
            "seed": args.seed,
        },
        "cells": cells,
        "workers": args.workers,
        "serial": {"wall_time_s": serial_s, "cells_per_sec": cells / serial_s},
        "process": {"wall_time_s": process_s, "cells_per_sec": cells / process_s},
        "speedup": speedup,
        "parity": parity,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not parity:
        print("error: serial and process backends disagree", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiment grids, figures and benchmarks.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list every known preset name")
    list_parser.set_defaults(func=_cmd_list)

    grid_parser = subparsers.add_parser(
        "grid", help="run a scenario x platform x scheduler grid"
    )
    grid_parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario names (repeatable; default: all)",
    )
    grid_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform names (repeatable; default: 4k_1ws_2os)",
    )
    grid_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="comma-separated scheduler names (repeatable; "
        "default: fcfs_dynamic,planaria,dream_full)",
    )
    grid_parser.add_argument(
        "--duration-ms", type=float, default=None, help="simulated window per cell"
    )
    grid_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    grid_parser.add_argument(
        "--cascade-probability", type=float, default=0.5,
        help="ML-cascade trigger probability (default: 0.5)",
    )
    grid_parser.add_argument(
        "--smoke", action="store_true",
        help=f"use the fixed CI smoke grid ({'x'.join(str(len(v)) for v in SMOKE_GRID.values())} "
        f"cells at {SMOKE_DURATION_MS:g} ms)",
    )
    grid_parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full grid result (uxcost table + per-cell stats) as JSON",
    )
    _add_execution_options(grid_parser)
    grid_parser.set_defaults(func=_cmd_grid)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one evaluation figure (2,7-14) or 'all'"
    )
    figure_parser.add_argument(
        "name", help="figure number (e.g. 7), name (figure7), or 'all'"
    )
    figure_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="override the figure's default simulated window",
    )
    figure_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    figure_parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="write <figure>.txt and <figure>.json into this directory",
    )
    _add_execution_options(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    bench_parser = subparsers.add_parser(
        "bench", help="time serial vs process execution and emit BENCH_grid.json"
    )
    bench_parser.add_argument(
        "--scenarios", action="append", metavar="NAMES",
        help="comma-separated scenario names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--platforms", action="append", metavar="NAMES",
        help="comma-separated platform names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--schedulers", action="append", metavar="NAMES",
        help="comma-separated scheduler names (default: smoke grid)",
    )
    bench_parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated window per cell (default: 2000)",
    )
    bench_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    bench_parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="process-pool size to benchmark against (default: 4)",
    )
    bench_parser.add_argument(
        "--out", type=Path, default=Path("BENCH_grid.json"), metavar="PATH",
        help="machine-readable output file (default: BENCH_grid.json)",
    )
    bench_parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless the process backend is at least X times faster",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point (``repro`` in ``pyproject.toml``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        # Unknown preset names and invalid option values raise with a
        # message that already lists the alternatives; show it without a
        # traceback.
        message = error.args[0] if error.args else str(error)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
