"""Experiment harness: regenerate every figure of the paper's evaluation.

Each ``figure*`` function in :mod:`repro.experiments.figures` runs the
simulations behind one figure of the paper and returns a structured result
plus a plain-text table with the same rows/series the paper plots.  The
``benchmarks/`` directory wraps each one in a pytest-benchmark target.
"""

from repro.experiments.harness import (
    ExperimentCell,
    GridResult,
    run_cell,
    run_grid,
    run_phased_workload,
)
from repro.experiments.sweeps import cascade_probability_sweep, uxcost_objective, parameter_grid
from repro.experiments import figures

__all__ = [
    "ExperimentCell",
    "GridResult",
    "run_cell",
    "run_grid",
    "run_phased_workload",
    "cascade_probability_sweep",
    "uxcost_objective",
    "parameter_grid",
    "figures",
]
