"""Experiment harness: regenerate every figure of the paper's evaluation.

Each ``figure*`` function in :mod:`repro.experiments.figures` runs the
simulations behind one figure of the paper and returns a structured result
plus a plain-text table with the same rows/series the paper plots.  The
``benchmarks/`` directory wraps each one in a pytest-benchmark target, and
the ``repro`` console CLI (:mod:`repro.cli`) drives grids, figures and
throughput benchmarks from the command line.

Execution is cell-parallel: grids expand into picklable
:class:`~repro.experiments.jobs.CellJob` specs executed on a pluggable
backend (:mod:`repro.experiments.backends` — ``serial`` or a
``ProcessPoolExecutor``-based ``process`` pool) with optional content-keyed
on-disk persistence (:mod:`repro.experiments.store`).
"""

from repro.experiments.backends import (
    BACKEND_FACTORIES,
    JobTimeoutError,
    ProcessBackend,
    SerialBackend,
    backend_names,
    make_backend,
)
from repro.experiments.harness import (
    ExecutionDefaults,
    ExperimentCell,
    GridResult,
    default_execution,
    execute_jobs,
    get_execution_defaults,
    run_cell,
    run_grid,
    run_phased_workload,
)
from repro.experiments.differential import (
    DifferentialReport,
    FuzzResult,
    SchedulerRun,
    replay_artifact,
    run_differential,
    run_fuzz,
)
from repro.experiments.benchmark import compare_to_baseline, run_engine_bench
from repro.experiments.jobs import CellJob, PhasedJob, generated_cell_jobs, grid_jobs
from repro.experiments.store import ResultStore
from repro.experiments.sweeps import cascade_probability_sweep, uxcost_objective, parameter_grid
from repro.experiments import figures

__all__ = [
    "BACKEND_FACTORIES",
    "CellJob",
    "DifferentialReport",
    "ExecutionDefaults",
    "ExperimentCell",
    "FuzzResult",
    "GridResult",
    "JobTimeoutError",
    "PhasedJob",
    "ProcessBackend",
    "ResultStore",
    "SchedulerRun",
    "SerialBackend",
    "generated_cell_jobs",
    "replay_artifact",
    "run_differential",
    "run_fuzz",
    "backend_names",
    "cascade_probability_sweep",
    "compare_to_baseline",
    "default_execution",
    "execute_jobs",
    "figures",
    "get_execution_defaults",
    "grid_jobs",
    "make_backend",
    "parameter_grid",
    "run_cell",
    "run_engine_bench",
    "run_grid",
    "run_phased_workload",
    "uxcost_objective",
]
