"""On-disk persistence for simulation results.

The store is a content-addressed cache: the key of a result is the SHA-256
of its :class:`~repro.experiments.jobs.CellJob` spec (every simulation
input, plus the package version), so a hit can only ever return a result
the current code would recompute identically.  Re-running a grid with a
store attached skips already-computed cells entirely — the enabler for
incremental figure regeneration and cheap CI smoke runs.

Layout: ``root/<key[:2]>/<key>.json``, one JSON document per result (the
:meth:`~repro.sim.SimulationResult.to_dict` form wrapped with its job spec
for inspectability).  Writes are atomic (temp file + rename), so a killed
run never leaves a truncated entry; entries corrupted *outside* the
store's control (truncation, bit rot, hand editing) are detected on load,
counted on the :attr:`ResultStore.corrupt` counter, reported once via
:mod:`warnings`, and treated as misses — the caller recomputes and the
next :meth:`ResultStore.put` overwrites the bad entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.experiments.jobs import CellJob
from repro.sim import SimulationResult


class ResultStore:
    """Content-keyed directory of persisted :class:`SimulationResult` objects.

    Args:
        root: cache directory; created (with parents) if missing.

    Attributes:
        hits: number of ``get``/``load`` calls answered from disk.
        misses: number of calls that found no (usable) entry.
        writes: number of results persisted.
        corrupt: subset of ``misses`` where an entry *existed* but failed
            to parse or validate — absent entries are plain misses,
            corrupt ones additionally emit a :class:`RuntimeWarning`.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    # ------------------------------------------------------------------ #
    # key/path plumbing
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """On-disk location of a cache key."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, job: CellJob) -> bool:
        return self.path_for(job.cache_key()).is_file()

    def keys(self) -> Iterator[str]:
        """Iterate over every persisted cache key."""
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    # read/write
    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional[SimulationResult]:
        """Result stored under a raw cache key, or ``None``.

        An absent entry is a plain miss.  An entry that exists but fails
        to parse or validate (truncated write from a killed run on a
        non-atomic filesystem, bit rot, hand editing) is *also* a miss —
        the caller recomputes and overwrites it — but is additionally
        counted on :attr:`corrupt` and reported via a
        :class:`RuntimeWarning`, so silent cache rot is visible in
        :meth:`stats` and test runs.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            self.misses += 1
            self.corrupt += 1
            warnings.warn(
                f"result store entry {path} is corrupt "
                f"({type(error).__name__}: {error}); treating as a cache "
                "miss and recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.hits += 1
        return result

    def get(self, job: CellJob) -> Optional[SimulationResult]:
        """Cached result of a job, or ``None`` on a miss."""
        return self.load(job.cache_key())

    def put(self, job: CellJob, result: SimulationResult) -> Path:
        """Persist a job's result atomically and return its path."""
        path = self.path_for(job.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"job": job.to_dict(), "result": result.to_dict()}
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # No sort_keys: task_stats order is part of the result
                # contract (UXCost sums terms in task order).
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Hit/miss/write counters plus the entry count."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed
