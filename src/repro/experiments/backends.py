"""Pluggable execution backends for experiment jobs.

A backend maps a sequence of :class:`~repro.experiments.jobs.CellJob` specs
to their :class:`~repro.sim.SimulationResult` objects, preserving order.
Two backends ship with the harness:

* ``serial`` — runs every job in the calling process (the reference
  implementation; also the fallback for single-job batches).
* ``process`` — fans jobs out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker memoizes
  the per-(scenario, platform) context (scenario, platform, cost table)
  through the same :func:`~repro.experiments.jobs.shared_context` cache the
  serial path uses, so both backends execute byte-identical simulation
  code and produce bit-for-bit identical results.

Jobs carry every input by value (preset names + scalars), so the pool can
use either the ``fork`` or ``spawn`` start method; the module-level
:func:`execute_job` entry point keeps job execution picklable under both.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence, Union

from repro.experiments.jobs import CellJob
from repro.sim import SimulationResult


def execute_job(job: CellJob) -> SimulationResult:
    """Run one job (module-level so process pools can pickle it)."""
    return job.run()


class SerialBackend:
    """Run every job sequentially in the calling process."""

    name = "serial"

    def run_jobs(self, jobs: Sequence[CellJob]) -> list[SimulationResult]:
        """Execute jobs in order and return their results in order."""
        return [execute_job(job) for job in jobs]


class ProcessBackend:
    """Run jobs on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: jobs handed to a worker per dispatch.  ``None`` picks a
            chunk that spreads the batch ~4 ways per worker — big enough
            that contiguous same-(scenario, platform) cells usually land on
            one worker and share its memoized cost table, small enough to
            load-balance uneven cell durations.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, chunksize: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = workers or os.cpu_count() or 1
        self.chunksize = chunksize

    def run_jobs(self, jobs: Sequence[CellJob]) -> list[SimulationResult]:
        """Execute jobs across the pool, preserving submission order."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.workers == 1:
            return SerialBackend().run_jobs(jobs)
        workers = min(self.workers, len(jobs))
        chunksize = self.chunksize or max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, jobs, chunksize=chunksize))


#: Factories for every execution backend, keyed by canonical name.
BACKEND_FACTORIES: dict[str, Callable[..., object]] = {
    "serial": SerialBackend,
    "process": ProcessBackend,
}

#: Anything accepted where a backend is expected: a name or an instance.
BackendLike = Union[str, SerialBackend, ProcessBackend]


def backend_names() -> list[str]:
    """All registered backend names."""
    return list(BACKEND_FACTORIES)


def make_backend(backend: BackendLike = "serial", workers: Optional[int] = None):
    """Resolve a backend name (or pass an instance through).

    Args:
        backend: ``"serial"``, ``"process"``, or an object with a
            ``run_jobs`` method (returned unchanged).
        workers: pool size, only meaningful for the ``process`` backend.

    Raises:
        ValueError: if the name is not registered.
    """
    if not isinstance(backend, str):
        if not hasattr(backend, "run_jobs"):
            raise TypeError(f"not an execution backend: {backend!r}")
        return backend
    try:
        factory = BACKEND_FACTORIES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {backend_names()}"
        ) from None
    if factory is ProcessBackend:
        return ProcessBackend(workers=workers)
    return factory()
