"""Pluggable execution backends for experiment jobs.

A backend maps a sequence of :class:`~repro.experiments.jobs.CellJob` specs
to their :class:`~repro.sim.SimulationResult` objects, preserving order.
Two backends ship with the harness:

* ``serial`` — runs every job in the calling process (the reference
  implementation; also the fallback for single-job batches).
* ``process`` — fans jobs out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker memoizes
  the per-(scenario, platform) context (scenario, platform, cost table)
  through the same :func:`~repro.experiments.jobs.shared_context` cache the
  serial path uses, so both backends execute byte-identical simulation
  code and produce bit-for-bit identical results.

Jobs carry every input by value (preset names + scalars), so the pool can
use either the ``fork`` or ``spawn`` start method; the module-level
:func:`execute_job` entry point keeps job execution picklable under both.

Failure recovery: the process backend accepts an opt-in per-job timeout
(``job_timeout_s``).  A cell that exceeds it is retried **once, serially,
in the parent process** — distinguishing a wedged worker (the serial retry
succeeds and the sweep continues) from a genuinely divergent simulation
(the retry also hangs or raises, surfacing a :class:`JobTimeoutError`
naming the job instead of a silent indefinite hang).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Optional, Sequence, Union

from repro.experiments.jobs import CellJob
from repro.sim import SimulationResult


class JobTimeoutError(RuntimeError):
    """A cell job exceeded the backend's per-job timeout.

    Raised by :class:`ProcessBackend` only after the serial retry of the
    timed-out cell also failed, so it signals a reproducible problem with
    the job itself, not a transient worker wedge.
    """

    def __init__(self, job: CellJob, timeout_s: float, detail: str):
        self.job = job
        self.timeout_s = timeout_s
        super().__init__(
            f"cell job {job.scenario!r} on {job.platform!r} with "
            f"{job.scheduler!r} exceeded the {timeout_s:g}s per-job timeout "
            f"({detail})"
        )


def execute_job(job: CellJob) -> SimulationResult:
    """Run one job (module-level so process pools can pickle it)."""
    return job.run()


class SerialBackend:
    """Run every job sequentially in the calling process."""

    name = "serial"

    def run_jobs(self, jobs: Sequence[CellJob]) -> list[SimulationResult]:
        """Execute jobs in order and return their results in order."""
        return [execute_job(job) for job in jobs]


class ProcessBackend:
    """Run jobs on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: jobs handed to a worker per dispatch.  ``None`` picks a
            chunk that spreads the batch ~4 ways per worker — big enough
            that contiguous same-(scenario, platform) cells usually land on
            one worker and share its memoized cost table, small enough to
            load-balance uneven cell durations.
        job_timeout_s: opt-in per-job timeout.  ``None`` (default) keeps
            the historical unbounded ``pool.map`` path.  When set, jobs are
            submitted individually and awaited in order; a job that fails
            to produce a result within the budget is retried once serially
            in the parent process, and a :class:`JobTimeoutError` is raised
            only if that retry also fails — a hung worker degrades one cell
            to serial execution instead of hanging the whole sweep.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        job_timeout_s: Optional[float] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError(f"job_timeout_s must be positive (got {job_timeout_s})")
        self.workers = workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self.job_timeout_s = job_timeout_s

    def run_jobs(self, jobs: Sequence[CellJob]) -> list[SimulationResult]:
        """Execute jobs across the pool, preserving submission order."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.workers == 1:
            return SerialBackend().run_jobs(jobs)
        workers = min(self.workers, len(jobs))
        if self.job_timeout_s is None:
            chunksize = self.chunksize or max(1, len(jobs) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(execute_job, jobs, chunksize=chunksize))
        return self._run_with_timeout(jobs, workers)

    def _run_with_timeout(
        self, jobs: list[CellJob], workers: int
    ) -> list[SimulationResult]:
        """Per-job-timeout path: individual futures, serial retry on timeout.

        The waits are sequential in submission order, so each wait also
        buys queued jobs execution time; a job that times out while merely
        queued behind a slow batch costs one redundant serial run, never a
        wrong result.  A retry that *raises* converts the hang into a
        structured :class:`JobTimeoutError`; a retry that loops forever is
        a simulation bug this backend cannot preempt.
        """
        assert self.job_timeout_s is not None
        results: list[SimulationResult] = []
        clean = True
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [pool.submit(execute_job, job) for job in jobs]
            for job, future in zip(jobs, futures):
                try:
                    results.append(future.result(timeout=self.job_timeout_s))
                except FuturesTimeoutError:
                    clean = False
                    future.cancel()
                    try:
                        results.append(execute_job(job))
                    except Exception as error:
                        raise JobTimeoutError(
                            job,
                            self.job_timeout_s,
                            f"serial retry also failed: {error}",
                        ) from error
        finally:
            # A wedged worker would make the default joining shutdown hang
            # exactly the way the timeout exists to prevent.
            pool.shutdown(wait=clean, cancel_futures=not clean)
        return results


#: Factories for every execution backend, keyed by canonical name.
BACKEND_FACTORIES: dict[str, Callable[..., object]] = {
    "serial": SerialBackend,
    "process": ProcessBackend,
}

#: Anything accepted where a backend is expected: a name or an instance.
BackendLike = Union[str, SerialBackend, ProcessBackend]


def backend_names() -> list[str]:
    """All registered backend names."""
    return list(BACKEND_FACTORIES)


def make_backend(
    backend: BackendLike = "serial",
    workers: Optional[int] = None,
    job_timeout_s: Optional[float] = None,
):
    """Resolve a backend name (or pass an instance through).

    Args:
        backend: ``"serial"``, ``"process"``, or an object with a
            ``run_jobs`` method (returned unchanged).
        workers: pool size, only meaningful for the ``process`` backend.
        job_timeout_s: opt-in per-job timeout, only meaningful for the
            ``process`` backend (see :class:`ProcessBackend`).

    Raises:
        ValueError: if the name is not registered.
    """
    if not isinstance(backend, str):
        if not hasattr(backend, "run_jobs"):
            raise TypeError(f"not an execution backend: {backend!r}")
        return backend
    try:
        factory = BACKEND_FACTORIES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {backend_names()}"
        ) from None
    if factory is ProcessBackend:
        return ProcessBackend(workers=workers, job_timeout_s=job_timeout_s)
    return factory()
