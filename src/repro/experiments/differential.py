"""Cross-scheduler differential testing over generated scenarios.

The differential runner executes *every* requested scheduler on the same
scenario (typically produced by
:class:`~repro.workloads.generator.ScenarioGenerator`), audits each run
with the trace-invariant oracle (:mod:`repro.sim.invariants`) and then
checks *metamorphic* properties that relate the runs to each other —
properties that hold for any correct scheduler without knowing any golden
output:

* **Identical frame arrivals** — the sensor-frame stream is a function of
  (scenario, seed) only, so every scheduler must observe the exact same
  head-task arrivals (task, frame id, time).
* **Head-frame accounting parity** — every measured head frame is
  accounted exactly once by every scheduler, so per-head-task
  ``total_frames`` must agree across schedulers (cascaded tasks may differ
  legitimately: cascade spawning depends on scheduler-dependent completion
  and RNG interleaving).
* **Feasibility implies liveness** — if the FCFS baseline finishes every
  measured frame of every task without a single deadline violation, the
  scenario is trivially feasible; a scheduler that then completes *zero*
  frames of such a task has deadlocked or starved it (e.g. DREAM must not
  be worse than "do nothing clever" in a trivially feasible scenario).

Per-scheduler harness failures (exceptions out of the engine) are captured
rather than aborting the sweep, so one crashing scheduler still yields a
full report — and the CLI can distinguish *harness errors* from
*invariant violations* in its exit code.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.experiments.jobs import generated_context
from repro.hardware import CostTable, Platform
from repro.schedulers import make_scheduler, scheduler_names
from repro.sim import SimulationEngine, SimulationResult, Tracer, Violation, audit_trace
from repro.sim.faults import FAULT_KINDS, FaultSpec, sample_fault_plan
from repro.sim.resource_models import RESOURCE_MODEL_NAMES
from repro.sim.tracer import TraceRecord
from repro.workloads.generator import GeneratorSpec
from repro.workloads.scenario import Scenario

#: Scheduler used as the feasibility baseline when present.
FEASIBILITY_BASELINE = "fcfs_dynamic"

#: Decision-path axis of the differential harness.  Each name selects a
#: ``(mode, kernel)`` pair of :class:`~repro.sim.SimulationEngine`:
#: ``"python"`` is the scalar fast path, ``"vector"`` the NumPy decision
#: kernel (requires numpy), and ``"reference"`` the retained
#: pre-optimization engine.  All three must produce bit-for-bit identical
#: results and traces; ``run_differential(kernels=...)`` re-runs every
#: scheduler on each extra axis value and reports any divergence as a
#: ``kernel_parity`` metamorphic failure.
KERNEL_AXIS = {
    "python": ("fast", "python"),
    "vector": ("fast", "vector"),
    "reference": ("reference", "python"),
}

#: Axis order used by ``--kernels all`` and the parity matrix.
KERNEL_AXIS_NAMES = tuple(KERNEL_AXIS)

#: Event-loop axis of the differential harness: the
#: :data:`~repro.sim.loops.ENGINE_LOOPS` names, passed straight through as
#: ``SimulationEngine(loop=...)``.  ``"fast"`` is the struct-of-arrays
#: rewrite, ``"compiled"`` the mypyc build of it (requires the compiled
#: extension).  All loops must produce bit-for-bit identical results and
#: traces; ``run_differential(loops=...)`` re-runs every scheduler on each
#: extra loop and reports any divergence as a ``loop_parity`` metamorphic
#: failure.
LOOP_AXIS_NAMES = ("python", "fast", "compiled")

#: Execution-resource-model axis: the
#: :data:`~repro.sim.resource_models.RESOURCE_MODEL_NAMES`, passed through
#: as ``SimulationEngine(resource_model=...)``.  Unlike the kernel and
#: loop axes, secondary resource models are **not** parity-compared to the
#: canonical run — different capacity physics legitimately produce
#: different schedules — instead each extra model re-runs every scheduler
#: under the full trace-invariant oracle (which includes the
#: ``no_memory_oversubscription`` and ``interaction_causality`` checks
#: that only bind under ``kv_batch``).
RESOURCE_MODEL_AXIS_NAMES = RESOURCE_MODEL_NAMES

#: Chaos axis: the registered fault kinds of :mod:`repro.sim.faults`.
#: For each requested kind the harness samples a deterministic fault plan
#: (seeded from the run seed) and re-runs every scheduler with injection
#: enabled under the **full trace-invariant oracle**, including the
#: fault-specific checks (``no_dispatch_while_faulted``,
#: ``fault_conservation``, ``degraded_capacity_respected``).  Like the
#: resource-model axis this is re-audit, not parity: a faulted schedule
#: legitimately differs from the fault-free one.
FAULT_AXIS_NAMES = tuple(FAULT_KINDS)


@dataclass(frozen=True)
class SchedulerRun:
    """Outcome of one scheduler on one scenario."""

    scheduler: str
    result: SimulationResult
    violations: tuple[Violation, ...]
    arrivals: tuple[tuple[str, Optional[int], float], ...]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class DifferentialReport:
    """All per-scheduler runs plus cross-scheduler findings for one scenario."""

    scenario_name: str
    platform: str
    duration_ms: float
    seed: int
    runs: dict[str, SchedulerRun] = field(default_factory=dict)
    metamorphic_failures: list[Violation] = field(default_factory=list)
    harness_errors: dict[str, str] = field(default_factory=dict)
    generator: Optional[GeneratorSpec] = None
    generator_index: int = 0
    kernels: tuple[str, ...] = ("python",)
    loops: tuple[str, ...] = ("python",)
    resource_models: tuple[str, ...] = ("pe_fraction",)
    faults: tuple[str, ...] = ()
    #: Runs under secondary resource models, keyed
    #: ``"<scheduler>@resource:<model>"``; kept out of :attr:`runs` so the
    #: cross-scheduler metamorphic checks only relate runs that share the
    #: same capacity physics.
    resource_runs: dict[str, SchedulerRun] = field(default_factory=dict)
    #: Chaos runs with fault injection enabled, keyed
    #: ``"<scheduler>@faults:<kind>"``; kept out of :attr:`runs` for the
    #: same reason — a faulted schedule is not comparable to a fault-free
    #: one, so these runs feed the invariant oracle only.
    fault_runs: dict[str, SchedulerRun] = field(default_factory=dict)
    #: The sampled fault plan per axis kind (recorded in the artifact so a
    #: failing chaos run replays bit-for-bit).
    fault_plans: dict[str, tuple[FaultSpec, ...]] = field(default_factory=dict)

    @property
    def invariant_violations(self) -> list[tuple[str, Violation]]:
        """Every (scheduler, violation) pair across all runs."""
        return [
            (name, violation)
            for name, run in (
                list(self.runs.items())
                + list(self.resource_runs.items())
                + list(self.fault_runs.items())
            )
            for violation in run.violations
        ]

    @property
    def ok(self) -> bool:
        """True when no invariant or metamorphic property was violated.

        Harness errors are reported separately (:attr:`harness_errors`);
        they make a report *erroneous*, not *violating*.
        """
        return not self.invariant_violations and not self.metamorphic_failures

    def to_artifact(self) -> dict:
        """JSON-serializable record sufficient to replay this scenario.

        The artifact carries the generator spec and index (when the
        scenario was generated), the exact run parameters, and every
        finding — this is what ``repro fuzz`` writes for failing scenarios
        and what ``repro fuzz --replay`` consumes.
        """
        return {
            "scenario_name": self.scenario_name,
            "platform": self.platform,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            # Harness errors on a secondary kernel are keyed
            # "scheduler@kernel"; strip the suffix so the artifact's
            # scheduler list stays valid registry names for --replay.
            "schedulers": sorted(
                set(self.runs)
                | {name.split("@", 1)[0] for name in self.harness_errors}
            ),
            "kernels": list(self.kernels),
            "loops": list(self.loops),
            "resource_models": list(self.resource_models),
            "faults": list(self.faults),
            "fault_plans": {
                kind: [spec.to_dict() for spec in plan]
                for kind, plan in self.fault_plans.items()
            },
            "generator": self.generator.to_dict() if self.generator else None,
            "generator_index": self.generator_index,
            "invariant_violations": [
                {
                    "scheduler": scheduler,
                    "invariant": violation.invariant,
                    "message": violation.message,
                    "time_ms": violation.time_ms,
                    "request_id": violation.request_id,
                }
                for scheduler, violation in self.invariant_violations
            ],
            "metamorphic_failures": [
                {"invariant": violation.invariant, "message": violation.message}
                for violation in self.metamorphic_failures
            ],
            "harness_errors": dict(self.harness_errors),
        }

    def describe(self) -> str:
        """One-line-per-finding human summary."""
        status = "OK" if self.ok and not self.harness_errors else "FAIL"
        axis = f", kernels {'+'.join(self.kernels)}" if len(self.kernels) > 1 else ""
        if len(self.loops) > 1:
            axis += f", loops {'+'.join(self.loops)}"
        if len(self.resource_models) > 1:
            axis += f", resources {'+'.join(self.resource_models)}"
        if self.faults:
            axis += f", faults {'+'.join(self.faults)}"
        lines = [
            f"{status} {self.scenario_name} on {self.platform} "
            f"({len(self.runs)} schedulers, {self.duration_ms:g} ms, "
            f"seed {self.seed}{axis})"
        ]
        for scheduler, violation in self.invariant_violations:
            lines.append(f"  {scheduler}: {violation}")
        for violation in self.metamorphic_failures:
            lines.append(f"  metamorphic: [{violation.invariant}] {violation.message}")
        for scheduler, error in self.harness_errors.items():
            lines.append(f"  harness error in {scheduler}: {error.splitlines()[-1]}")
        return "\n".join(lines)


def _head_arrivals(records: Sequence[TraceRecord]) -> tuple[tuple[str, Optional[int], float], ...]:
    """Canonical (task, frame, time) stream of head-task arrivals."""
    return tuple(
        (record.task_name, record.frame_id, record.time_ms)
        for record in records
        if record.event == "arrival"
    )


def _normalized_trace(records: Sequence[TraceRecord]) -> tuple[TraceRecord, ...]:
    """Trace with request ids renumbered by order of first appearance.

    Request ids come from a process-global counter, so two runs of the same
    simulation in one process produce different raw ids; the engine only
    ever relies on their relative order, which the mapping preserves.  This
    is what makes cross-kernel traces comparable for equality.
    """
    mapping: dict[int, int] = {}
    return tuple(
        replace(record, request_id=mapping.setdefault(record.request_id, len(mapping)))
        for record in records
    )


def _check_metamorphic(
    report: DifferentialReport, scenario: Scenario
) -> list[Violation]:
    """Cross-scheduler properties over all successful runs."""
    failures: list[Violation] = []
    runs = list(report.runs.values())
    if len(runs) < 2:
        return failures
    reference = runs[0]

    head_names = [task.name for task in scenario.head_tasks]
    for run in runs[1:]:
        if run.arrivals != reference.arrivals:
            failures.append(
                Violation(
                    "identical_arrivals",
                    f"schedulers {reference.scheduler!r} and {run.scheduler!r} saw "
                    f"different head-frame arrival streams for the same seed "
                    f"({len(reference.arrivals)} vs {len(run.arrivals)} arrivals)",
                )
            )
        for task_name in head_names:
            ref_total = reference.result.task_stats[task_name].total_frames
            run_total = run.result.task_stats[task_name].total_frames
            if ref_total != run_total:
                failures.append(
                    Violation(
                        "head_frame_accounting",
                        f"head task {task_name!r}: {reference.scheduler!r} measured "
                        f"{ref_total} frames but {run.scheduler!r} measured {run_total}",
                    )
                )

    baseline = report.runs.get(FEASIBILITY_BASELINE)
    if baseline is not None:
        feasible = all(
            stats.total_frames > 0 and stats.violated_frames == 0
            for stats in baseline.result.task_stats.values()
        )
        if feasible:
            for run in runs:
                for task_name, stats in run.result.task_stats.items():
                    if stats.total_frames > 0 and stats.completed_frames == 0:
                        failures.append(
                            Violation(
                                "feasible_implies_live",
                                f"scenario is feasible under {FEASIBILITY_BASELINE!r} "
                                f"but {run.scheduler!r} completed 0 of "
                                f"{stats.total_frames} frames of task {task_name!r} "
                                "(deadlock/starvation)",
                            )
                        )
    return failures


def run_differential(
    scenario: Scenario,
    platform: Platform,
    schedulers: Sequence[str],
    duration_ms: float = 400.0,
    seed: int = 0,
    cost_table: Optional[CostTable] = None,
    generator: Optional[GeneratorSpec] = None,
    generator_index: int = 0,
    kernels: Sequence[str] = ("python",),
    loops: Sequence[str] = ("python",),
    resource_models: Sequence[str] = ("pe_fraction",),
    faults: Sequence[str] = (),
) -> DifferentialReport:
    """Run every scheduler on one scenario and audit all invariants.

    Args:
        scenario: the workload under test (generated or preset).
        platform: hardware platform shared by all runs.
        schedulers: scheduler registry names to execute.
        duration_ms: simulated window per run.
        seed: simulation seed shared by all runs (the basis of the
            identical-arrivals metamorphic property).
        cost_table: optional prebuilt cost table (built once otherwise).
        generator / generator_index: provenance, recorded in the artifact
            so a failing generated scenario can be replayed from its spec.
        kernels: decision-path axis (:data:`KERNEL_AXIS` names).  The first
            entry is the canonical run that feeds the invariant oracle and
            the cross-scheduler metamorphic checks; every further entry
            re-runs each scheduler on that engine path and any divergence
            in results or (id-normalized) traces is a ``kernel_parity``
            metamorphic failure.  A crash on a secondary path is recorded
            as harness error ``"<scheduler>@<kernel>"``.
        loops: event-loop axis (:data:`LOOP_AXIS_NAMES`).  Works exactly
            like ``kernels`` but varies ``SimulationEngine(loop=...)``
            while holding the canonical kernel fixed: the first entry is
            the canonical loop, each further entry re-runs every scheduler
            and divergence is a ``loop_parity`` metamorphic failure, with
            crashes keyed ``"<scheduler>@loop:<loop>"``.
        resource_models: execution-resource-model axis
            (:data:`RESOURCE_MODEL_AXIS_NAMES`).  The first entry is the
            model every kernel/loop run uses; each further entry re-runs
            every scheduler under that model with the **full invariant
            oracle** (no parity comparison: different capacity physics
            legitimately schedule differently), with findings recorded in
            :attr:`DifferentialReport.resource_runs` and crashes keyed
            ``"<scheduler>@resource:<model>"``.
        faults: chaos axis (:data:`FAULT_AXIS_NAMES`).  For each kind a
            deterministic fault plan is sampled from the run seed
            (:func:`~repro.sim.faults.sample_fault_plan`) and every
            scheduler re-runs with injection enabled under the full
            invariant oracle including the fault-specific checks.  Runs
            land in :attr:`DifferentialReport.fault_runs`, crashes keyed
            ``"<scheduler>@faults:<kind>"``; the sampled plans are recorded
            in the artifact so failures replay bit-for-bit.  Fault runs
            always use the canonical kernel on ``loop="python"`` (the only
            loop that models faults).
    """
    for kernel in kernels:
        if kernel not in KERNEL_AXIS:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {KERNEL_AXIS_NAMES}"
            )
    if not kernels:
        raise ValueError("kernels must name at least one decision path")
    for loop in loops:
        if loop not in LOOP_AXIS_NAMES:
            raise ValueError(
                f"unknown loop {loop!r}; choose from {LOOP_AXIS_NAMES}"
            )
    if not loops:
        raise ValueError("loops must name at least one event loop")
    for model in resource_models:
        if model not in RESOURCE_MODEL_AXIS_NAMES:
            raise ValueError(
                f"unknown resource model {model!r}; "
                f"choose from {RESOURCE_MODEL_AXIS_NAMES}"
            )
    if not resource_models:
        raise ValueError("resource_models must name at least one model")
    for kind in faults:
        if kind not in FAULT_AXIS_NAMES:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {FAULT_AXIS_NAMES}"
            )
    cost_table = cost_table or CostTable.build(platform, scenario.all_model_graphs())
    report = DifferentialReport(
        scenario_name=scenario.name,
        platform=platform.name,
        duration_ms=duration_ms,
        seed=seed,
        generator=generator,
        generator_index=generator_index,
        kernels=tuple(kernels),
        loops=tuple(loops),
        resource_models=tuple(resource_models),
        faults=tuple(faults),
    )
    canonical, *extra_kernels = kernels
    canonical_loop, *extra_loops = loops
    canonical_resources, *extra_resources = resource_models
    fault_plans = {
        kind: sample_fault_plan(
            seed=seed,
            duration_ms=duration_ms,
            accelerators=len(platform.accelerators),
            kinds=(kind,),
        )
        for kind in faults
    }
    report.fault_plans = dict(fault_plans)
    kernel_failures: list[Violation] = []

    def _run(
        scheduler_name: str,
        axis_name: str,
        loop_name: str,
        resource_model: str = canonical_resources,
        fault_plan: tuple[FaultSpec, ...] = (),
    ) -> tuple[SimulationResult, Tracer]:
        mode, engine_kernel = KERNEL_AXIS[axis_name]
        if mode != "fast" or fault_plan:
            # Non-python loops only exist for the fast engine mode, and
            # fault injection exists only on the python loop; the
            # reference decision path always runs the historical loop.
            loop_name = "python"
        tracer = Tracer()
        engine = SimulationEngine(
            scenario=scenario,
            platform=platform,
            scheduler=make_scheduler(scheduler_name),
            duration_ms=duration_ms,
            seed=seed,
            cost_table=cost_table,
            tracer=tracer,
            mode=mode,
            kernel=engine_kernel,
            loop=loop_name,
            resource_model=resource_model,
            faults=fault_plan,
        )
        return engine.run(), tracer

    for scheduler_name in schedulers:
        try:
            result, tracer = _run(scheduler_name, canonical, canonical_loop)
        except Exception:  # noqa: BLE001 - a crashing scheduler is a finding
            report.harness_errors[scheduler_name] = traceback.format_exc()
            continue
        violations = audit_trace(tracer, scenario=scenario, result=result)
        report.runs[scheduler_name] = SchedulerRun(
            scheduler=scheduler_name,
            result=result,
            violations=tuple(violations),
            arrivals=_head_arrivals(tracer.records),
        )
        for resource_model in extra_resources:
            try:
                rm_result, rm_tracer = _run(
                    scheduler_name, canonical, canonical_loop, resource_model
                )
            except Exception:  # noqa: BLE001 - a crashing model is a finding
                report.harness_errors[
                    f"{scheduler_name}@resource:{resource_model}"
                ] = traceback.format_exc()
                continue
            rm_violations = audit_trace(rm_tracer, scenario=scenario, result=rm_result)
            report.resource_runs[
                f"{scheduler_name}@resource:{resource_model}"
            ] = SchedulerRun(
                scheduler=scheduler_name,
                result=rm_result,
                violations=tuple(rm_violations),
                arrivals=_head_arrivals(rm_tracer.records),
            )
        for kind, fault_plan in fault_plans.items():
            try:
                f_result, f_tracer = _run(
                    scheduler_name, canonical, "python", fault_plan=fault_plan
                )
            except Exception:  # noqa: BLE001 - a crashing chaos run is a finding
                report.harness_errors[
                    f"{scheduler_name}@faults:{kind}"
                ] = traceback.format_exc()
                continue
            f_violations = audit_trace(
                f_tracer, scenario=scenario, result=f_result, faults=fault_plan
            )
            report.fault_runs[f"{scheduler_name}@faults:{kind}"] = SchedulerRun(
                scheduler=scheduler_name,
                result=f_result,
                violations=tuple(f_violations),
                arrivals=_head_arrivals(f_tracer.records),
            )
        if not extra_kernels and not extra_loops:
            continue
        # Parity axes: the canonical run was audited above, so a
        # bit-identical secondary run needs no second audit — equality of
        # the result dict and the id-normalized trace *is* the oracle gate.
        canonical_dict = result.to_dict()
        canonical_trace = _normalized_trace(tracer.records)
        for axis_name in extra_kernels:
            try:
                extra_result, extra_tracer = _run(
                    scheduler_name, axis_name, canonical_loop
                )
            except Exception:  # noqa: BLE001 - a crashing path is a finding
                report.harness_errors[f"{scheduler_name}@{axis_name}"] = (
                    traceback.format_exc()
                )
                continue
            if extra_result.to_dict() != canonical_dict:
                kernel_failures.append(
                    Violation(
                        "kernel_parity",
                        f"{scheduler_name}: {axis_name!r} decision path produced "
                        f"a different result than {canonical!r} "
                        f"(seed {seed}, {duration_ms:g} ms)",
                    )
                )
            elif _normalized_trace(extra_tracer.records) != canonical_trace:
                kernel_failures.append(
                    Violation(
                        "kernel_parity",
                        f"{scheduler_name}: {axis_name!r} decision path produced "
                        f"an identical result but a different event trace than "
                        f"{canonical!r} (seed {seed}, {duration_ms:g} ms)",
                    )
                )
        for loop_name in extra_loops:
            try:
                extra_result, extra_tracer = _run(
                    scheduler_name, canonical, loop_name
                )
            except Exception:  # noqa: BLE001 - a crashing loop is a finding
                report.harness_errors[f"{scheduler_name}@loop:{loop_name}"] = (
                    traceback.format_exc()
                )
                continue
            if extra_result.to_dict() != canonical_dict:
                kernel_failures.append(
                    Violation(
                        "loop_parity",
                        f"{scheduler_name}: {loop_name!r} event loop produced "
                        f"a different result than {canonical_loop!r} "
                        f"(seed {seed}, {duration_ms:g} ms)",
                    )
                )
            elif _normalized_trace(extra_tracer.records) != canonical_trace:
                kernel_failures.append(
                    Violation(
                        "loop_parity",
                        f"{scheduler_name}: {loop_name!r} event loop produced "
                        f"an identical result but a different event trace than "
                        f"{canonical_loop!r} (seed {seed}, {duration_ms:g} ms)",
                    )
                )
    report.metamorphic_failures = _check_metamorphic(report, scenario) + kernel_failures
    return report


@dataclass
class FuzzResult:
    """Outcome of a fuzz sweep: one differential report per scenario."""

    spec: GeneratorSpec
    reports: list[DifferentialReport] = field(default_factory=list)

    @property
    def failing(self) -> list[DifferentialReport]:
        """Reports with invariant or metamorphic violations."""
        return [report for report in self.reports if not report.ok]

    @property
    def erroneous(self) -> list[DifferentialReport]:
        """Reports where at least one scheduler crashed the harness."""
        return [report for report in self.reports if report.harness_errors]

    @property
    def ok(self) -> bool:
        return not self.failing and not self.erroneous

    def summary(self) -> str:
        total = len(self.reports)
        bad = {id(report) for report in self.failing} | {
            id(report) for report in self.erroneous
        }
        return (
            f"{total} scenario(s) fuzzed: {total - len(bad)} clean, "
            f"{len(self.failing)} violating, {len(self.erroneous)} with harness errors"
        )


def run_fuzz(
    spec: GeneratorSpec,
    count: int,
    schedulers: Optional[Sequence[str]] = None,
    platform: str = "4k_1ws_2os",
    duration_ms: float = 400.0,
    seed: int = 0,
    kernels: Sequence[str] = ("python",),
    loops: Sequence[str] = ("python",),
    resource_models: Sequence[str] = ("pe_fraction",),
    faults: Sequence[str] = (),
) -> FuzzResult:
    """Differentially test ``count`` generated scenarios of a spec.

    Each scenario ``i`` of the spec is built through the process-local
    generated-context cache (cost table built once per scenario) and run
    under every scheduler, on every requested decision path (``kernels``),
    event loop (``loops``), execution-resource model (``resource_models``)
    and chaos fault kind (``faults``, see :func:`run_differential`).
    """
    if count < 1:
        raise ValueError("count must be positive")
    schedulers = list(schedulers) if schedulers else scheduler_names()
    fuzz = FuzzResult(spec=spec)
    for index in range(count):
        scenario, platform_obj, cost_table = generated_context(spec, index, platform)
        fuzz.reports.append(
            run_differential(
                scenario,
                platform_obj,
                schedulers,
                duration_ms=duration_ms,
                seed=seed,
                cost_table=cost_table,
                generator=spec,
                generator_index=index,
                kernels=kernels,
                loops=loops,
                resource_models=resource_models,
                faults=faults,
            )
        )
    return fuzz


def replay_artifact(
    artifact: dict,
    schedulers: Optional[Sequence[str]] = None,
    kernels: Optional[Sequence[str]] = None,
    loops: Optional[Sequence[str]] = None,
    resource_models: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
) -> DifferentialReport:
    """Re-run the differential check described by a fuzz artifact.

    Args:
        artifact: a dict as produced by
            :meth:`DifferentialReport.to_artifact` (or at minimum the keys
            ``generator``, ``generator_index``, ``platform``,
            ``duration_ms``, ``seed``).
        schedulers: optional override of the artifact's scheduler list.
        kernels: optional override of the artifact's decision-path axis.
        loops: optional override of the artifact's event-loop axis.
        resource_models: optional override of the artifact's
            execution-resource-model axis.
        faults: optional override of the artifact's chaos axis.  The fault
            plan itself is re-sampled from the recorded seed, which — by
            construction — reproduces the recorded ``fault_plans``
            bit-for-bit.

    Raises:
        ValueError: if the artifact has no generator spec (non-generated
            scenarios are replayed with ``repro grid`` instead).
    """
    if not artifact.get("generator"):
        raise ValueError(
            "artifact has no generator spec; only generated scenarios can be "
            "replayed from a spec file"
        )
    spec = GeneratorSpec.from_dict(artifact["generator"])
    index = int(artifact.get("generator_index", 0))
    platform_name = artifact.get("platform", "4k_1ws_2os")
    scenario, platform_obj, cost_table = generated_context(spec, index, platform_name)
    return run_differential(
        scenario,
        platform_obj,
        list(schedulers) if schedulers else artifact.get("schedulers") or scheduler_names(),
        duration_ms=float(artifact.get("duration_ms", 400.0)),
        seed=int(artifact.get("seed", 0)),
        cost_table=cost_table,
        generator=spec,
        generator_index=index,
        kernels=tuple(kernels) if kernels else tuple(artifact.get("kernels") or ("python",)),
        loops=tuple(loops) if loops else tuple(artifact.get("loops") or ("python",)),
        resource_models=(
            tuple(resource_models)
            if resource_models
            else tuple(artifact.get("resource_models") or ("pe_fraction",))
        ),
        faults=(
            tuple(faults) if faults is not None else tuple(artifact.get("faults") or ())
        ),
    )
