"""Parameter and workload sweeps shared by several figures.

* :func:`uxcost_objective` — the objective function handed to the
  iterative (alpha, beta) optimizer: one short simulation of a fixed-
  parameter DREAM per evaluation (Figures 10, 11, 13).
* :func:`parameter_grid` — an exhaustive grid evaluation of the (alpha,
  beta) space, used to locate the "global optimum" the paper compares its
  search result against.
* :func:`cascade_probability_sweep` — UXCost of a set of schedulers while
  the ML-cascade trigger probability rises from 50% towards 99%
  (Figures 12 and 14).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.config import DreamConfig, OptimizationObjective
from repro.core.dream import DreamScheduler
from repro.hardware import CostTable, make_platform
from repro.sim import SimulationResult, run_simulation
from repro.workloads import build_scenario


def uxcost_objective(
    scenario_name: str,
    platform_name: str,
    duration_ms: float = 400.0,
    seed: int = 0,
    cascade_probability: float = 0.5,
    objective: OptimizationObjective = OptimizationObjective.UXCOST,
) -> Callable[[float, float], float]:
    """Build an ``f(alpha, beta) -> cost`` objective for the offline optimizer.

    Each evaluation runs a short simulation of DREAM with *fixed* (alpha,
    beta) (no online tuning, no frame drop, no Supernet switching, so the
    measurement isolates the MapScore parameters) and returns the selected
    metric.
    """
    scenario = build_scenario(scenario_name, cascade_probability=cascade_probability)
    platform = make_platform(platform_name)
    cost_table = CostTable.build(platform, scenario.all_model_graphs())

    def objective_fn(alpha: float, beta: float) -> float:
        config = DreamConfig(
            enable_parameter_optimization=False,
            enable_frame_drop=False,
            enable_supernet_switching=False,
            alpha=alpha,
            beta=beta,
        )
        result = run_simulation(
            scenario=scenario,
            platform=platform,
            scheduler=DreamScheduler(config, name=f"dream_a{alpha:.2f}_b{beta:.2f}"),
            duration_ms=duration_ms,
            seed=seed,
            cost_table=cost_table,
        )
        breakdown = result.uxcost_breakdown
        if objective is OptimizationObjective.DEADLINE_ONLY:
            return breakdown.overall_violation_rate
        if objective is OptimizationObjective.ENERGY_ONLY:
            return breakdown.overall_normalized_energy
        return breakdown.uxcost

    return objective_fn


def parameter_grid(
    objective_fn: Callable[[float, float], float],
    values: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
) -> dict[tuple[float, float], float]:
    """Evaluate the objective on an (alpha, beta) grid (Figure 10 backdrop)."""
    return {
        (alpha, beta): objective_fn(alpha, beta)
        for alpha in values
        for beta in values
    }


def cascade_probability_sweep(
    scenario_name: str,
    platform_name: str,
    scheduler_names: Sequence[str],
    probabilities: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
    duration_ms: float = 800.0,
    seed: int = 0,
) -> dict[float, dict[str, SimulationResult]]:
    """UXCost of each scheduler as the ML-cascade probability increases.

    Returns ``{probability: {scheduler: SimulationResult}}`` — the raw data
    behind Figure 12 (UXCost curves) and Figure 14 (Supernet variant mix).
    """
    from repro.schedulers import make_scheduler  # local import to avoid cycles

    platform = make_platform(platform_name)
    sweep: dict[float, dict[str, SimulationResult]] = {}
    for probability in probabilities:
        scenario = build_scenario(scenario_name, cascade_probability=probability)
        cost_table = CostTable.build(platform, scenario.all_model_graphs())
        sweep[probability] = {}
        for scheduler_name in scheduler_names:
            sweep[probability][scheduler_name] = run_simulation(
                scenario=scenario,
                platform=platform,
                scheduler=make_scheduler(scheduler_name),
                duration_ms=duration_ms,
                seed=seed,
                cost_table=cost_table,
            )
    return sweep
