"""Picklable job specifications for the experiment layer.

A grid evaluation is a set of independent (scenario, platform, scheduler)
cells, and a phased run is a sequence of scenarios executed under one
scheduler instance.  Both are described here as small frozen dataclasses
built only from preset *names* and scalars, so a job can be

* pickled to a :class:`concurrent.futures.ProcessPoolExecutor` worker,
* hashed into a stable content key for the on-disk result cache
  (:mod:`repro.experiments.store`), and
* replayed bit-for-bit: the job carries every input that influences the
  simulation (names, seed, duration, cascade probability, engine kwargs),
  and :meth:`CellJob.run` constructs a *fresh* scheduler via
  :func:`repro.schedulers.make_scheduler` on every execution.

Workers memoize the expensive per-(scenario, platform) context — the built
scenario, the platform and its :class:`~repro.hardware.CostTable` — in a
process-local cache, mirroring how the serial harness builds each cost
table once and shares it across schedulers.  All cached objects are frozen
dataclasses, so sharing them across cells cannot leak state between
simulations.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.hardware import CostTable, Platform, make_platform
from repro.schedulers import make_scheduler
from repro.sim import SimulationResult, run_simulation
from repro.workloads import Scenario, build_scenario
from repro.workloads.dynamicity import PhasedWorkload
from repro.workloads.generator import GeneratorSpec, ScenarioGenerator

#: Bump when simulation semantics change in a way that invalidates cached
#: results (also combined with ``repro.__version__`` in the cache key).
#: 2: results gained streamed latency quantiles — older cached payloads
#: load fine but would silently lack the new per-task data.
CACHE_FORMAT_VERSION = 2

#: Engine kwargs must stay JSON-scalar so jobs remain picklable and
#: content-addressable.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _freeze_engine_kwargs(kwargs: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Validate and canonicalize engine kwargs into a hashable tuple."""
    for key, value in kwargs.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"engine kwarg {key!r} must be a JSON scalar to be used in a "
                f"job spec (got {type(value).__name__}); pass prebuilt objects "
                f"through run_cell's explicit-override path instead"
            )
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class ExperimentCell:
    """One (scenario, platform, scheduler) point of an evaluation grid."""

    scenario: str
    platform: str
    scheduler: str

    @property
    def key(self) -> str:
        """Stable string key for result dictionaries."""
        return f"{self.scenario}/{self.platform}/{self.scheduler}"

    @classmethod
    def from_key(cls, key: str) -> "ExperimentCell":
        """Inverse of :attr:`key`."""
        scenario, platform, scheduler = key.split("/")
        return cls(scenario, platform, scheduler)


@dataclass(frozen=True)
class CellJob:
    """A self-contained, picklable description of one grid-cell simulation.

    Attributes:
        scenario: scenario preset name (``repro.workloads.scenario_names()``).
        platform: platform preset name (``repro.hardware.PLATFORM_PRESETS``).
        scheduler: scheduler name (``repro.schedulers.scheduler_names()``); a
            fresh scheduler is instantiated per run, so repeated executions
            are independent and deterministic.
        duration_ms: simulated window length.
        seed: seed for every stochastic element of the simulation.
        cascade_probability: ML-cascade trigger probability of the scenario.
        engine_kwargs: extra :class:`~repro.sim.SimulationEngine` kwargs as a
            sorted tuple of (name, scalar) pairs (see :meth:`create`).
        generator: optional :class:`~repro.workloads.GeneratorSpec`; when
            set, the scenario is *generated* (``ScenarioGenerator(generator)
            .generate(generator_index)``) instead of resolved as a preset
            name, and ``scenario`` must equal the generated scenario's name.
            The spec is a frozen dataclass of scalars, so generated jobs
            remain picklable and content-addressable exactly like preset
            jobs (``cascade_probability`` is ignored — trigger probabilities
            live inside the spec).
        generator_index: scenario index within the generator spec.
    """

    scenario: str
    platform: str
    scheduler: str
    duration_ms: float = 1000.0
    seed: int = 0
    cascade_probability: float = 0.5
    engine_kwargs: Tuple[Tuple[str, object], ...] = ()
    generator: Optional[GeneratorSpec] = None
    generator_index: int = 0

    @classmethod
    def create(
        cls,
        scenario: str,
        platform: str,
        scheduler: str,
        duration_ms: float = 1000.0,
        seed: int = 0,
        cascade_probability: float = 0.5,
        generator: Optional[GeneratorSpec] = None,
        generator_index: int = 0,
        **engine_kwargs,
    ) -> "CellJob":
        """Build a job from keyword engine kwargs (validated to scalars)."""
        return cls(
            scenario=scenario,
            platform=platform,
            scheduler=scheduler,
            duration_ms=duration_ms,
            seed=seed,
            cascade_probability=cascade_probability,
            engine_kwargs=_freeze_engine_kwargs(engine_kwargs),
            generator=generator,
            generator_index=generator_index,
        )

    @classmethod
    def for_generated(
        cls,
        generator: GeneratorSpec,
        index: int,
        platform: str,
        scheduler: str,
        duration_ms: float = 1000.0,
        seed: int = 0,
        **engine_kwargs,
    ) -> "CellJob":
        """Build a job for one *generated* scenario of a spec.

        The scenario name is derived from the spec so the job's grid cell
        key stays self-describing (``gen-<seed>-<index>/platform/scheduler``).
        """
        return cls.create(
            scenario=ScenarioGenerator(generator).scenario_name(index),
            platform=platform,
            scheduler=scheduler,
            duration_ms=duration_ms,
            seed=seed,
            generator=generator,
            generator_index=index,
            **engine_kwargs,
        )

    @property
    def cell(self) -> ExperimentCell:
        """The grid coordinate this job computes."""
        return ExperimentCell(self.scenario, self.platform, self.scheduler)

    def to_dict(self) -> dict:
        """JSON-serializable description of every simulation input.

        Generator fields are only included for generated jobs, so the
        content hashes (and therefore the cached results) of preset jobs
        are unchanged by the generator feature.
        """
        payload = {
            "scenario": self.scenario,
            "platform": self.platform,
            "scheduler": self.scheduler,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "cascade_probability": self.cascade_probability,
            "engine_kwargs": {key: value for key, value in self.engine_kwargs},
        }
        if self.generator is not None:
            payload["generator"] = self.generator.to_dict()
            payload["generator_index"] = self.generator_index
        return payload

    def cache_key(self) -> str:
        """Content hash of the job — the key of the on-disk result cache.

        Two jobs share a key iff they describe the same simulation, so a
        cache hit is a correctness-preserving skip.  The repro package
        version and a cache format version are folded in, invalidating
        stale results when simulation semantics change.
        """
        import repro

        payload = {
            "format": CACHE_FORMAT_VERSION,
            "repro_version": repro.__version__,
            "job": self.to_dict(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def run(self) -> SimulationResult:
        """Execute the cell, reusing the process-local context cache."""
        if self.generator is not None:
            scenario, platform, cost_table = generated_context(
                self.generator, self.generator_index, self.platform
            )
            if self.scenario != scenario.name:
                raise ValueError(
                    f"generated job scenario name {self.scenario!r} does not match "
                    f"the generated scenario {scenario.name!r}; build jobs via "
                    f"generated_cell_jobs() or CellJob.for_generated()"
                )
        else:
            scenario, platform, cost_table = shared_context(
                self.scenario, self.platform, self.cascade_probability
            )
        return run_simulation(
            scenario=scenario,
            platform=platform,
            scheduler=make_scheduler(self.scheduler),
            duration_ms=self.duration_ms,
            seed=self.seed,
            cost_table=cost_table,
            **dict(self.engine_kwargs),
        )


@dataclass(frozen=True)
class PhasedJob:
    """A multi-phase workload run under ONE scheduler instance.

    Unlike :class:`CellJob`, phases intentionally share scheduler state:
    the scheduler is created once (via :func:`make_scheduler`, so the
    construction path is identical to the grid path) and reused across
    phases so its internal state — most importantly DREAM's tuned
    (alpha, beta) — carries over the usage-scenario change.  Phase ``i``
    runs with seed ``seed + i``; both facts are part of the job contract,
    making the determinism of phased runs explicit rather than incidental.

    Only scheduler state crosses a phase boundary: requests still in
    flight when a phase ends are finalized as unfinished in that phase's
    result and discarded — nothing is re-queued into the next phase.
    """

    workload: PhasedWorkload
    platform: str
    scheduler: str
    seed: int = 0
    engine_kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(
        cls,
        workload: PhasedWorkload,
        platform: str,
        scheduler: str,
        seed: int = 0,
        **engine_kwargs,
    ) -> "PhasedJob":
        """Build a phased job from keyword engine kwargs."""
        return cls(
            workload=workload,
            platform=platform,
            scheduler=scheduler,
            seed=seed,
            engine_kwargs=_freeze_engine_kwargs(engine_kwargs),
        )

    def run(self) -> list[SimulationResult]:
        """Execute every phase in order, threading one scheduler through."""
        platform = make_platform(self.platform)
        scheduler = make_scheduler(self.scheduler)
        results = []
        for index, phase in enumerate(self.workload.phases):
            results.append(
                run_simulation(
                    scenario=phase.scenario,
                    platform=platform,
                    scheduler=scheduler,
                    duration_ms=phase.duration_ms,
                    seed=self.seed + index,
                    **dict(self.engine_kwargs),
                )
            )
        return results


# --------------------------------------------------------------------- #
# process-local context cache
# --------------------------------------------------------------------- #

#: Cap on memoized (scenario, platform) contexts per process; large sweeps
#: evict least-recently-used entries instead of growing without bound.
_CONTEXT_CACHE_SIZE = 32

_context_cache: "OrderedDict[tuple, tuple[Scenario, Platform, CostTable]]" = OrderedDict()


def _cached_context(key: tuple, build: "Callable[[], Scenario]", platform_name: str):
    """LRU-memoize (scenario, platform, cost table) under ``key``."""
    cached = _context_cache.get(key)
    if cached is not None:
        _context_cache.move_to_end(key)
        return cached
    scenario = build()
    platform = make_platform(platform_name)
    cost_table = CostTable.build(platform, scenario.all_model_graphs())
    _context_cache[key] = (scenario, platform, cost_table)
    while len(_context_cache) > _CONTEXT_CACHE_SIZE:
        _context_cache.popitem(last=False)
    return scenario, platform, cost_table


def shared_context(
    scenario_name: str,
    platform_name: str,
    cascade_probability: float,
) -> tuple[Scenario, Platform, CostTable]:
    """Scenario, platform and cost table for a cell, memoized per process.

    The cost table is identical for every scheduler of a (scenario,
    platform) pair, exactly as the paper's offline cost-model stage would
    produce it once; memoizing it here gives both the serial backend and
    each pool worker the same build-once behavior.  All returned objects
    are immutable, so reuse across cells is safe.
    """
    return _cached_context(
        (scenario_name, platform_name, cascade_probability),
        lambda: build_scenario(scenario_name, cascade_probability=cascade_probability),
        platform_name,
    )


def generated_context(
    spec: GeneratorSpec,
    index: int,
    platform_name: str,
) -> tuple[Scenario, Platform, CostTable]:
    """Like :func:`shared_context` but for a generated scenario.

    Keyed by the spec's canonical JSON (stable across processes), the
    scenario index and the platform, and stored in the same LRU cache, so
    fuzz sweeps that run many schedulers over one generated scenario build
    its cost table once per process.
    """
    return _cached_context(
        ("generated", spec.canonical_key(), index, platform_name),
        lambda: ScenarioGenerator(spec).generate(index),
        platform_name,
    )


def clear_context_cache() -> None:
    """Drop every memoized (scenario, platform) context (mainly for tests)."""
    _context_cache.clear()


def grid_jobs(
    scenarios: Sequence[str],
    platforms: Sequence[str],
    schedulers: Sequence[str],
    duration_ms: float = 1000.0,
    seed: int = 0,
    cascade_probability: float = 0.5,
    **engine_kwargs,
) -> list[CellJob]:
    """Expand a (scenario x platform x scheduler) grid into cell jobs.

    Jobs are ordered scheduler-innermost so contiguous chunks handed to a
    worker share their (scenario, platform) context.
    """
    return [
        CellJob.create(
            scenario=scenario,
            platform=platform,
            scheduler=scheduler,
            duration_ms=duration_ms,
            seed=seed,
            cascade_probability=cascade_probability,
            **engine_kwargs,
        )
        for scenario in scenarios
        for platform in platforms
        for scheduler in schedulers
    ]


def generated_cell_jobs(
    spec: GeneratorSpec,
    count: int,
    platforms: Sequence[str],
    schedulers: Sequence[str],
    duration_ms: float = 1000.0,
    seed: int = 0,
    **engine_kwargs,
) -> list[CellJob]:
    """Expand ``count`` generated scenarios into a grid of cell jobs.

    Ordered scheduler-innermost like :func:`grid_jobs`, so contiguous
    chunks share the generated (scenario, platform) context.
    """
    return [
        CellJob.for_generated(
            spec,
            index,
            platform=platform,
            scheduler=scheduler,
            duration_ms=duration_ms,
            seed=seed,
            **engine_kwargs,
        )
        for index in range(count)
        for platform in platforms
        for scheduler in schedulers
    ]
