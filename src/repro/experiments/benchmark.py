"""Engine-throughput benchmark: events/sec, with reference-parity checks.

``repro bench-engine`` (and :func:`run_engine_bench` behind it) measures the
simulation hot loop itself, complementing ``repro bench`` which measures
process-pool scaling.  Every cell of a basket — the Table-3 preset grid
plus a fixed set of generated scenarios, across all registered schedulers —
is simulated twice:

* once on the optimized engine (``mode="fast"``: incremental request pool,
  cached system views, flat-array costing),
* once on the optimized engine with the NumPy decision kernel
  (``kernel="vector"``; skipped when numpy is unavailable),
* once on the struct-of-arrays event loop (``loop="fast"``; recorded as the
  ``compiled_*`` columns instead when the mypyc extension is importable,
  since the module then *is* the compiled build), and
* once on the retained reference path (``mode="reference"``: the
  pre-optimization scan-based pool, per-call cost aggregation and view
  construction),

and the :class:`~repro.sim.results.SimulationResult`\\ s are asserted
bit-for-bit identical across all passes.  Throughput is reported as simulation events
processed per wall-clock second; the speedup is the ratio of the two.

The resulting payload is written to ``BENCH_engine.json`` so the engine's
performance trajectory persists across PRs; CI re-runs a quick basket and
compares against the committed baseline (see :func:`compare_to_baseline`).
"""

from __future__ import annotations

import cProfile
import os
import platform as platform_mod
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.experiments.backends import make_backend
from repro.experiments.jobs import generated_context, shared_context
from repro.hardware.vector_view import HAVE_NUMPY
from repro.schedulers import make_scheduler
from repro.sim import SimulationEngine, fastloop_is_compiled
from repro.workloads import GeneratorSpec

#: Default simulated window: the engine's own default, which is also the
#: regime the paper evaluates (queues saturate, so the benchmark measures
#: the loaded steady state rather than the idle ramp-up).
DEFAULT_DURATION_MS = 2000.0

#: Shortest wall time a cell is allowed to report.  ``perf_counter`` can
#: return identical ticks around a very fast quick-basket cell, which used
#: to drive the ``events / wall`` division into a ``0.0 events/sec``
#: fallback — silently understating throughput and tripping the
#: ``--min-speedup``/baseline gates.  Clamping to the timer's own
#: resolution keeps every ratio finite and honest (a cell genuinely faster
#: than one tick is unmeasurable, not infinitely fast).
_MIN_WALL_S = time.get_clock_info("perf_counter").resolution or 1e-9


def _per_sec(events: int, wall_s: float) -> float:
    """Events/sec with the wall clamped to the timer resolution."""
    return events / max(wall_s, _MIN_WALL_S)


def _ratio(numerator_s: float, denominator_s: float) -> float:
    """Wall-clock ratio with both sides clamped to the timer resolution.

    Clamping both keeps the degenerate case honest: two walls below one
    tick compare as 1.0x (mutually unmeasurable), not 0.0x or infinity.
    """
    return max(numerator_s, _MIN_WALL_S) / max(denominator_s, _MIN_WALL_S)


def _run_once(scenario, platform, scheduler_name: str, cost_table, duration_ms: float,
              seed: int, mode: str, kernel: str = "python", loop: str = "python",
              resource_model: str = "pe_fraction") -> tuple[dict, SimulationEngine, float]:
    """One simulation; returns (result dict, the engine, wall seconds)."""
    engine = SimulationEngine(
        scenario=scenario,
        platform=platform,
        scheduler=make_scheduler(scheduler_name),
        duration_ms=duration_ms,
        seed=seed,
        cost_table=cost_table,
        mode=mode,
        kernel=kernel,
        loop=loop,
        resource_model=resource_model,
    )
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    return result.to_dict(), engine, elapsed


def _cpu_model() -> str:
    """The host CPU model string (best effort, '' when undiscoverable)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform_mod.processor() or ""


def host_metadata() -> dict:
    """Host facts stamped into every bench payload.

    Raw events/sec only transfer between runs on comparable hardware, so
    the payload records what it ran on; :func:`compare_to_baseline` uses
    this to *warn* about cross-host comparisons instead of silently
    skipping the absolute-throughput gates.
    """
    return {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "perf_counter_resolution": time.get_clock_info("perf_counter").resolution,
    }


@dataclass(frozen=True)
class EngineBenchJob:
    """One picklable bench cell: a (scenario, platform, scheduler) triple
    timed on both engines.

    Carries preset names and scalars only (like
    :class:`~repro.experiments.jobs.CellJob`), so ``repro bench-engine
    --jobs N`` can fan cells out to the existing process backend; each
    worker resolves its (scenario, platform, cost table) context through
    the same process-local LRU cache the serial path uses.  The per-cell
    parity assertion runs inside :meth:`run`, so parallel execution checks
    exactly what the serial path checks.
    """

    scenario: Optional[str]
    platform: str
    scheduler: str
    duration_ms: float
    seed: int
    generator: Optional[GeneratorSpec] = None
    generator_index: int = 0
    repeats: int = 1
    resource_model: str = "pe_fraction"

    def _context(self):
        if self.generator is not None:
            return generated_context(self.generator, self.generator_index, self.platform)
        return shared_context(self.scenario, self.platform, 0.5)

    def run(self, profiler: Optional[cProfile.Profile] = None) -> dict:
        """Time the cell on both engines and return its bench record.

        With ``repeats > 1`` each engine runs that many times and the
        *minimum* wall time is recorded — the standard noise-robust
        estimator (results are deterministic, so repeats differ only in
        scheduling noise; the minimum is the run the machine interfered
        with least).  Both engines get the same treatment, so the
        fast/reference speedup stays an apples-to-apples ratio.
        """
        scenario, platform, cost_table = self._context()
        repeats = max(1, self.repeats)
        resources = self.resource_model
        fast_s = ref_s = vector_s = fastloop_s = compiled_s = float("inf")
        for _ in range(repeats):
            if profiler is not None:
                profiler.enable()
            fast_result, fast_engine, elapsed = _run_once(
                scenario, platform, self.scheduler, cost_table,
                self.duration_ms, self.seed, "fast", resource_model=resources,
            )
            if profiler is not None:
                profiler.disable()
            fast_s = min(fast_s, elapsed)
        vector_result = vector_engine = None
        if HAVE_NUMPY:
            for _ in range(repeats):
                vector_result, vector_engine, elapsed = _run_once(
                    scenario, platform, self.scheduler, cost_table,
                    self.duration_ms, self.seed, "fast", kernel="vector",
                    resource_model=resources,
                )
                vector_s = min(vector_s, elapsed)
        # The struct-of-arrays event loop.  When the mypyc extension is
        # importable the module IS the compiled build, so loop="fast" times
        # the compiled loop; the column is then recorded as compiled_* and
        # the interpreted fastloop number is unavailable (and vice versa).
        compiled = fastloop_is_compiled()
        for _ in range(repeats):
            fastloop_result, fastloop_engine, elapsed = _run_once(
                scenario, platform, self.scheduler, cost_table,
                self.duration_ms, self.seed, "fast", loop="fast",
                resource_model=resources,
            )
            fastloop_s = min(fastloop_s, elapsed)
        if compiled:
            compiled_s, fastloop_s = fastloop_s, float("inf")
        for _ in range(repeats):
            ref_result, ref_engine, elapsed = _run_once(
                scenario, platform, self.scheduler, cost_table,
                self.duration_ms, self.seed, "reference",
                resource_model=resources,
            )
            ref_s = min(ref_s, elapsed)
        fast_events = fast_engine.events_processed
        ref_events = ref_engine.events_processed
        cell_parity = fast_result == ref_result and fast_events == ref_events
        if vector_engine is not None:
            # The vector kernel must be indistinguishable from the scalar
            # fast path in everything but wall time.
            cell_parity = (
                cell_parity
                and vector_result == fast_result
                and vector_engine.events_processed == fast_events
                and vector_engine.dispatch_rounds == fast_engine.dispatch_rounds
            )
        # Same bar for the rewritten event loop.
        cell_parity = (
            cell_parity
            and fastloop_result == fast_result
            and fastloop_engine.events_processed == fast_events
            and fastloop_engine.dispatch_rounds == fast_engine.dispatch_rounds
        )
        cell = {
            "scenario": scenario.name,
            "platform": self.platform,
            "scheduler": self.scheduler,
            "events": fast_events,
            "fast_wall_s": fast_s,
            "reference_wall_s": ref_s,
            "fast_events_per_sec": _per_sec(fast_events, fast_s),
            "reference_events_per_sec": _per_sec(ref_events, ref_s),
            "speedup": _ratio(ref_s, fast_s),
            # Scheduler-load counters: dispatch_rounds counts actual
            # schedule() invocations; the reference engine keeps the exact
            # per-event dispatch path, so its rounds are the pre-elision
            # count the fast engine is measured against.
            "fast_schedule_calls": fast_engine.dispatch_rounds,
            "fast_dispatches_elided": fast_engine.dispatches_elided,
            "fast_events_coalesced": fast_engine.events_coalesced,
            "reference_schedule_calls": ref_engine.dispatch_rounds,
            "parity": cell_parity,
        }
        if resources != "pe_fraction":
            # Default cells stay byte-identical to historical payloads.
            cell["resource_model"] = resources
        if vector_engine is not None:
            cell["vector_wall_s"] = vector_s
            cell["vector_events_per_sec"] = _per_sec(fast_events, vector_s)
            cell["vector_speedup"] = _ratio(fast_s, vector_s)
        if compiled:
            cell["compiled_wall_s"] = compiled_s
            cell["compiled_events_per_sec"] = _per_sec(fast_events, compiled_s)
            cell["compiled_speedup"] = _ratio(fast_s, compiled_s)
        else:
            cell["fastloop_wall_s"] = fastloop_s
            cell["fastloop_events_per_sec"] = _per_sec(fast_events, fastloop_s)
            # loop_speedup: the per-event-floor loop vs the dict/heap loop,
            # both interpreted — the honest pure-Python number.
            cell["loop_speedup"] = _ratio(fast_s, fastloop_s)
        return cell


def bench_jobs(
    scenarios: Sequence[str],
    platforms: Sequence[str],
    schedulers: Sequence[str],
    generated: int,
    generator_spec: GeneratorSpec,
    generated_platform: str,
    duration_ms: float,
    seed: int,
    repeats: int = 1,
) -> list[EngineBenchJob]:
    """Expand a bench basket into its ordered list of cell jobs."""
    jobs: list[EngineBenchJob] = []
    for scenario_name in scenarios:
        for platform_name in platforms:
            for scheduler_name in schedulers:
                jobs.append(
                    EngineBenchJob(
                        scenario=scenario_name,
                        platform=platform_name,
                        scheduler=scheduler_name,
                        duration_ms=duration_ms,
                        seed=seed,
                        repeats=repeats,
                    )
                )
    for index in range(generated):
        for scheduler_name in schedulers:
            jobs.append(
                EngineBenchJob(
                    scenario=None,
                    platform=generated_platform,
                    scheduler=scheduler_name,
                    duration_ms=duration_ms,
                    seed=seed,
                    generator=generator_spec,
                    generator_index=index,
                    repeats=repeats,
                )
            )
    return jobs


def kv_smoke_basket() -> dict:
    """The fixed kv_batch smoke basket appended by ``--kv-smoke``.

    Small on purpose: the cells exist to *record* the KV-cache/
    continuous-batching engine's throughput trajectory (and assert its
    fast/vector/loop/reference parity), not to gate regressions —
    :func:`compare_to_baseline` never looks at them.
    """
    return {
        "schedulers": ["fcfs_dynamic", "planaria", "dream_full"],
        "generated": 2,
        "platform": "4k_1ws_2os",
        "duration_ms": 400.0,
    }


def _run_kv_smoke(seed: int, repeats: int) -> dict:
    """Run the kv_batch smoke cells and fold them into a mini payload."""
    basket = kv_smoke_basket()
    spec = GeneratorSpec(resource_model="kv_batch")
    cells = [
        EngineBenchJob(
            scenario=None,
            platform=basket["platform"],
            scheduler=scheduler_name,
            duration_ms=basket["duration_ms"],
            seed=seed,
            generator=spec,
            generator_index=index,
            repeats=repeats,
            resource_model="kv_batch",
        ).run()
        for index in range(basket["generated"])
        for scheduler_name in basket["schedulers"]
    ]
    events = sum(cell["events"] for cell in cells)
    fast_wall = sum(cell["fast_wall_s"] for cell in cells)
    reference_wall = sum(cell["reference_wall_s"] for cell in cells)
    return {
        "basket": {**basket, "generator": spec.to_dict(), "seed": seed},
        "cells": cells,
        "totals": {
            "cells": len(cells),
            "events": events,
            "fast_wall_s": fast_wall,
            "reference_wall_s": reference_wall,
            "fast_events_per_sec": _per_sec(events, fast_wall),
            "reference_events_per_sec": _per_sec(events, reference_wall),
            "speedup": _ratio(reference_wall, fast_wall),
        },
        "parity": all(cell["parity"] for cell in cells),
    }


def run_engine_bench(
    scenarios: Sequence[str],
    platforms: Sequence[str],
    schedulers: Sequence[str],
    generated: int = 3,
    generator_spec: Optional[GeneratorSpec] = None,
    generated_platform: Optional[str] = None,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    profile_path: Optional[Path] = None,
    jobs: int = 1,
    repeats: int = 1,
    kv_smoke: bool = False,
) -> dict:
    """Benchmark fast vs reference engine over a basket of cells.

    Args:
        scenarios: preset scenario names (the Table-3 grid by default).
        platforms: platform presets crossed with the preset scenarios.
        schedulers: scheduler names applied to every scenario.
        generated: number of :class:`ScenarioGenerator` scenarios appended
            to the basket (run on ``generated_platform``).
        generator_spec: spec for the generated scenarios (defaults to
            ``GeneratorSpec()`` — the CLI's default generator).
        generated_platform: platform for generated cells (defaults to the
            first entry of ``platforms``).
        duration_ms: simulated window per cell.
        seed: simulation seed shared by every cell.
        profile_path: when set, the optimized passes run under cProfile and
            the stats dump is written here (requires ``jobs=1``).
        jobs: run cells through the existing ``process`` execution backend
            with this pool size (1 = serial, in-process).  Per-cell results,
            counters and the parity assertion are identical either way; on
            a multi-core host (CI runners are 4-vCPU) the wall-clock of the
            *bench itself* shrinks, while per-cell timings — measured
            inside each worker — remain comparable.  On a single-core
            container worker timings contend with each other, so keep
            ``jobs=1`` when the absolute numbers matter.
        repeats: per-cell runs per engine; the minimum wall time is
            recorded (results are deterministic, so repeats only sample
            machine noise).  Use >1 when regenerating a committed
            baseline.
        kv_smoke: additionally run the fixed :func:`kv_smoke_basket` of
            ``resource_model="kv_batch"`` cells and record them under the
            payload's separate ``kv_smoke`` key.  Their parity folds into
            the top-level ``parity`` flag (engine divergence is a bug on
            any resource model), but :func:`compare_to_baseline` ignores
            them — the numbers are recorded, never regression-gated.

    Returns:
        JSON-serializable payload (see the module docstring); ``parity`` is
        False if any cell's results diverged between the two engines.

    Raises:
        ValueError: if ``jobs > 1`` is combined with ``profile_path`` (a
        cProfile capture cannot span pool workers).
    """
    spec = generator_spec or GeneratorSpec()
    generated_platform = generated_platform or (platforms[0] if platforms else "4k_1ws_2os")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (got {jobs})")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1 (got {repeats})")
    if jobs > 1 and profile_path is not None:
        raise ValueError("profiling requires jobs=1 (cProfile cannot span pool workers)")

    cell_jobs = bench_jobs(
        scenarios, platforms, schedulers, generated, spec,
        generated_platform, duration_ms, seed, repeats=repeats,
    )

    if jobs > 1:
        backend = make_backend("process", workers=jobs)
        cells = backend.run_jobs(cell_jobs)
    else:
        profiler = cProfile.Profile() if profile_path is not None else None
        cells = [job.run(profiler) for job in cell_jobs]
        if profiler is not None and profile_path is not None:
            profile_path.parent.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(profile_path))

    total_events = sum(cell["events"] for cell in cells)
    total_fast = sum(cell["fast_wall_s"] for cell in cells)
    total_reference = sum(cell["reference_wall_s"] for cell in cells)
    parity = all(cell["parity"] for cell in cells)

    fast_eps = _per_sec(total_events, total_fast)
    reference_eps = _per_sec(total_events, total_reference)
    vectorized = [cell for cell in cells if "vector_wall_s" in cell]
    total_vector = sum(cell["vector_wall_s"] for cell in vectorized)
    fastlooped = [cell for cell in cells if "fastloop_wall_s" in cell]
    total_fastloop = sum(cell["fastloop_wall_s"] for cell in fastlooped)
    compiled_cells = [cell for cell in cells if "compiled_wall_s" in cell]
    total_compiled = sum(cell["compiled_wall_s"] for cell in compiled_cells)
    schedule_calls = sum(cell["fast_schedule_calls"] for cell in cells)
    payload = {
        "benchmark": "engine_throughput",
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "machine": platform_mod.platform(),
        "host": host_metadata(),
        "basket": {
            "scenarios": list(scenarios),
            "platforms": list(platforms),
            "schedulers": list(schedulers),
            "generated": generated,
            "generator": spec.to_dict(),
            "generated_platform": generated_platform,
            "duration_ms": duration_ms,
            "seed": seed,
        },
        "cells": cells,
        # cProfile instruments only the optimized passes, so profiled runs
        # report distorted (pessimistic) fast timings — use them for hotspot
        # inspection, never as the recorded benchmark.
        "profiled": profile_path is not None,
        "jobs": jobs,
        "repeats": repeats,
        "totals": {
            "cells": len(cells),
            "events": total_events,
            "fast_wall_s": total_fast,
            "reference_wall_s": total_reference,
            "fast_events_per_sec": fast_eps,
            "reference_events_per_sec": reference_eps,
            "speedup": fast_eps / reference_eps if reference_eps > 0 else 0.0,
            **(
                {
                    "vector_wall_s": total_vector,
                    "vector_events_per_sec": _per_sec(total_events, total_vector),
                    "vector_speedup": _ratio(total_fast, total_vector),
                }
                if len(vectorized) == len(cells) and cells
                else {}
            ),
            **(
                {
                    "fastloop_wall_s": total_fastloop,
                    "fastloop_events_per_sec": _per_sec(total_events, total_fastloop),
                    "loop_speedup": _ratio(total_fast, total_fastloop),
                }
                if len(fastlooped) == len(cells) and cells
                else {}
            ),
            **(
                {
                    "compiled_wall_s": total_compiled,
                    "compiled_events_per_sec": _per_sec(total_events, total_compiled),
                    "compiled_speedup": _ratio(total_fast, total_compiled),
                }
                if len(compiled_cells) == len(cells) and cells
                else {}
            ),
            # Deterministic scheduler-load counters (identical across
            # machines for one basket): the quick-basket CI gate fails when
            # fast_schedule_calls regresses against the committed baseline.
            "fast_schedule_calls": schedule_calls,
            "fast_dispatches_elided": sum(
                cell["fast_dispatches_elided"] for cell in cells
            ),
            "fast_events_coalesced": sum(
                cell["fast_events_coalesced"] for cell in cells
            ),
            "reference_schedule_calls": sum(
                cell["reference_schedule_calls"] for cell in cells
            ),
        },
        "parity": parity,
    }
    if kv_smoke:
        smoke = _run_kv_smoke(seed, repeats)
        payload["kv_smoke"] = smoke
        payload["parity"] = parity and smoke["parity"]
    return payload


def baseline_entries(baseline: dict) -> list[dict]:
    """All bench payloads stored in a baseline file.

    ``BENCH_engine.json`` is a dict of labeled payloads (``full``,
    ``quick``, ...) so one committed file covers both the headline Table-3
    run and the CI-sized basket; a bare single payload is also accepted.
    """
    if "totals" in baseline:
        return [baseline]
    return [entry for entry in baseline.values() if isinstance(entry, dict) and "totals" in entry]


def _host_mismatch(payload: dict, match: dict) -> Optional[str]:
    """Why the two payloads' hosts are not comparable (None when they are).

    Compares the structured host metadata when both sides record it (CPU
    model, core count, Python version), falling back to the coarse
    ``machine`` platform string for pre-metadata baselines.
    """
    host, base_host = payload.get("host"), match.get("host")
    if host and base_host:
        for key in ("cpu_model", "cpu_count", "python"):
            if host.get(key) != base_host.get(key):
                return (
                    f"host {key} differs: {host.get(key)!r} vs baseline "
                    f"{base_host.get(key)!r}"
                )
        return None
    if payload.get("machine") != match.get("machine"):
        return (
            f"machine differs: {payload.get('machine')!r} vs baseline "
            f"{match.get('machine')!r}"
        )
    return None


def compare_to_baseline(
    payload: dict,
    baseline: dict,
    max_regression: float,
    max_round_regression: float = 0.1,
    warnings: Optional[list[str]] = None,
) -> list[str]:
    """Regression messages comparing a fresh payload to a committed baseline.

    The baseline entry with the *same basket* as the fresh run is selected
    (durations and cell sets change the measured ratios, so cross-basket
    numbers are not comparable).  The primary comparison is the
    fast/reference *speedup* — a wall-clock ratio measured within one run,
    so it transfers across machines of different absolute speed.  Raw
    events/sec are additionally compared when the recorded host matches
    (absolute throughput on a different host says nothing about a code
    regression); on a host mismatch the skipped absolute gates are
    reported into ``warnings`` (when a list is passed) instead of being
    dropped silently.

    ``fast_schedule_calls`` — the fast engine's dispatch-round /
    ``schedule()``-invocation count over the basket — is compared whenever
    the baseline records it: the count is a deterministic function of the
    basket (no timing noise), so growing it more than
    ``max_round_regression`` means dispatch elision regressed even if the
    wall clock happens to hide it.

    Returns a list of human-readable failure messages (empty = no
    regression beyond the thresholds).
    """
    match = next(
        (
            entry
            for entry in baseline_entries(baseline)
            if entry.get("basket") == payload.get("basket")
        ),
        None,
    )
    if match is None:
        return [
            "baseline has no entry with a matching basket; regenerate it with "
            "the same bench-engine options"
        ]

    problems: list[str] = []
    threshold = 1.0 - max_regression
    current = payload["totals"]
    base = match["totals"]

    mismatch = _host_mismatch(payload, match)
    same_host = mismatch is None
    if mismatch is not None and warnings is not None:
        warnings.append(
            f"{mismatch}; skipping the absolute events/sec gates (wall-clock "
            "ratios are still compared)"
        )

    base_speedup = base.get("speedup")
    if base_speedup:
        ratio = current["speedup"] / base_speedup
        if ratio < threshold:
            problems.append(
                f"fast/reference speedup regressed: {current['speedup']:.2f}x vs "
                f"baseline {base_speedup:.2f}x ({(1.0 - ratio) * 100:.0f}% worse, "
                f"allowed {max_regression * 100:.0f}%)"
            )

    base_eps = base.get("fast_events_per_sec")
    if same_host and base_eps:
        ratio = current["fast_events_per_sec"] / base_eps
        if ratio < threshold:
            problems.append(
                f"events/sec regressed: {current['fast_events_per_sec']:.0f} vs "
                f"baseline {base_eps:.0f} ({(1.0 - ratio) * 100:.0f}% worse, "
                f"allowed {max_regression * 100:.0f}%)"
            )

    base_vector = base.get("vector_speedup")
    current_vector = current.get("vector_speedup")
    if base_vector and current_vector:
        ratio = current_vector / base_vector
        if ratio < threshold:
            problems.append(
                f"vector/fast speedup regressed: {current_vector:.2f}x vs "
                f"baseline {base_vector:.2f}x ({(1.0 - ratio) * 100:.0f}% worse, "
                f"allowed {max_regression * 100:.0f}%)"
            )

    base_vector_eps = base.get("vector_events_per_sec")
    current_vector_eps = current.get("vector_events_per_sec")
    if same_host and base_vector_eps and current_vector_eps:
        ratio = current_vector_eps / base_vector_eps
        if ratio < threshold:
            problems.append(
                f"vector events/sec regressed: {current_vector_eps:.0f} vs "
                f"baseline {base_vector_eps:.0f} ({(1.0 - ratio) * 100:.0f}% "
                f"worse, allowed {max_regression * 100:.0f}%)"
            )

    base_loop = base.get("loop_speedup")
    current_loop = current.get("loop_speedup")
    if base_loop and current_loop:
        ratio = current_loop / base_loop
        if ratio < threshold:
            problems.append(
                f"fastloop/fast speedup regressed: {current_loop:.2f}x vs "
                f"baseline {base_loop:.2f}x ({(1.0 - ratio) * 100:.0f}% worse, "
                f"allowed {max_regression * 100:.0f}%)"
            )

    base_loop_eps = base.get("fastloop_events_per_sec")
    current_loop_eps = current.get("fastloop_events_per_sec")
    if same_host and base_loop_eps and current_loop_eps:
        ratio = current_loop_eps / base_loop_eps
        if ratio < threshold:
            problems.append(
                f"fastloop events/sec regressed: {current_loop_eps:.0f} vs "
                f"baseline {base_loop_eps:.0f} ({(1.0 - ratio) * 100:.0f}% "
                f"worse, allowed {max_regression * 100:.0f}%)"
            )

    base_compiled = base.get("compiled_speedup")
    current_compiled = current.get("compiled_speedup")
    if base_compiled and current_compiled:
        ratio = current_compiled / base_compiled
        if ratio < threshold:
            problems.append(
                f"compiled/fast speedup regressed: {current_compiled:.2f}x vs "
                f"baseline {base_compiled:.2f}x ({(1.0 - ratio) * 100:.0f}% "
                f"worse, allowed {max_regression * 100:.0f}%)"
            )

    base_rounds = base.get("fast_schedule_calls")
    current_rounds = current.get("fast_schedule_calls")
    if base_rounds and current_rounds is not None:
        ratio = current_rounds / base_rounds
        if ratio > 1.0 + max_round_regression:
            problems.append(
                f"dispatch rounds / schedule() calls regressed: "
                f"{current_rounds} vs baseline {base_rounds} "
                f"({(ratio - 1.0) * 100:.0f}% more, allowed "
                f"{max_round_regression * 100:.0f}%)"
            )
    return problems


def speedup_ratio(payload: dict) -> float:
    """The headline fast-vs-reference speedup of a bench payload."""
    return payload["totals"]["speedup"]


def describe(payload: dict) -> str:
    """Human-readable summary table of a bench payload."""
    lines = []
    totals = payload["totals"]
    for cell in payload["cells"]:
        counters = ""
        if "fast_schedule_calls" in cell:
            counters = (
                f"  sched {cell['fast_schedule_calls']:>6d}"
                f" (elided {cell['fast_dispatches_elided']}"
                f", coalesced {cell['fast_events_coalesced']})"
            )
        vector = ""
        if "vector_wall_s" in cell:
            vector = (
                f"  vec {cell['vector_wall_s'] * 1000:7.1f} ms "
                f"({cell['vector_speedup']:4.2f}x)"
            )
        loop = ""
        if "fastloop_wall_s" in cell:
            loop = (
                f"  floop {cell['fastloop_wall_s'] * 1000:7.1f} ms "
                f"({cell['loop_speedup']:4.2f}x)"
            )
        elif "compiled_wall_s" in cell:
            loop = (
                f"  cloop {cell['compiled_wall_s'] * 1000:7.1f} ms "
                f"({cell['compiled_speedup']:4.2f}x)"
            )
        lines.append(
            f"  {cell['scenario']:>18s}/{cell['platform']:<10s} {cell['scheduler']:<16s} "
            f"{cell['events']:>6d} ev  fast {cell['fast_wall_s'] * 1000:7.1f} ms  "
            f"ref {cell['reference_wall_s'] * 1000:8.1f} ms  {cell['speedup']:5.2f}x"
            f"{vector}"
            f"{loop}"
            f"{counters}"
            f"{'' if cell['parity'] else '  PARITY MISMATCH'}"
        )
    lines.append(
        f"total: {totals['cells']} cells, {totals['events']} events | "
        f"fast {totals['fast_events_per_sec']:.0f} ev/s "
        f"({totals['fast_wall_s']:.2f} s) vs reference "
        f"{totals['reference_events_per_sec']:.0f} ev/s "
        f"({totals['reference_wall_s']:.2f} s) -> {totals['speedup']:.2f}x"
    )
    if "vector_events_per_sec" in totals:
        lines.append(
            f"vector kernel: {totals['vector_events_per_sec']:.0f} ev/s "
            f"({totals['vector_wall_s']:.2f} s) -> {totals['vector_speedup']:.2f}x "
            f"over the scalar fast path"
        )
    if "fastloop_events_per_sec" in totals:
        lines.append(
            f"fast event loop: {totals['fastloop_events_per_sec']:.0f} ev/s "
            f"({totals['fastloop_wall_s']:.2f} s) -> {totals['loop_speedup']:.2f}x "
            f"over the dict/heap event loop (both interpreted)"
        )
    if "compiled_events_per_sec" in totals:
        lines.append(
            f"compiled event loop: {totals['compiled_events_per_sec']:.0f} ev/s "
            f"({totals['compiled_wall_s']:.2f} s) -> "
            f"{totals['compiled_speedup']:.2f}x over the interpreted engine"
        )
    if "fast_schedule_calls" in totals:
        lines.append(
            f"scheduler load: {totals['fast_schedule_calls']} schedule() calls "
            f"({totals['fast_dispatches_elided']} dispatches elided, "
            f"{totals['fast_events_coalesced']} events coalesced; reference "
            f"path made {totals['reference_schedule_calls']})"
        )
    smoke = payload.get("kv_smoke")
    if smoke:
        smoke_totals = smoke["totals"]
        lines.append(
            f"kv_batch smoke: {smoke_totals['cells']} cells, "
            f"{smoke_totals['events']} events | fast "
            f"{smoke_totals['fast_events_per_sec']:.0f} ev/s vs reference "
            f"{smoke_totals['reference_events_per_sec']:.0f} ev/s -> "
            f"{smoke_totals['speedup']:.2f}x (recorded, not gated; parity "
            f"{'OK' if smoke['parity'] else 'MISMATCH'})"
        )
    lines.append(f"parity: {'OK (bit-for-bit)' if payload['parity'] else 'MISMATCH'}")
    if payload.get("profiled"):
        lines.append(
            "note: optimized passes ran under cProfile — timings above are "
            "distorted; use this run for hotspot inspection only"
        )
    return "\n".join(lines)


def default_basket() -> dict:
    """The full Table-3 benchmark basket (used when no options are given)."""
    from repro.schedulers import scheduler_names
    from repro.workloads import scenario_names

    return {
        "scenarios": scenario_names(),
        "platforms": ["4k_1ws_2os", "4k_2ws"],
        "schedulers": scheduler_names(),
        "generated": 3,
        "duration_ms": DEFAULT_DURATION_MS,
    }


def quick_basket() -> dict:
    """A CI-sized basket (~seconds instead of minutes)."""
    from repro.schedulers import scheduler_names

    return {
        "scenarios": ["ar_call", "vr_gaming"],
        "platforms": ["4k_1ws_2os"],
        "schedulers": scheduler_names(),
        "generated": 2,
        "duration_ms": 400.0,
    }


__all__ = [
    "DEFAULT_DURATION_MS",
    "EngineBenchJob",
    "bench_jobs",
    "compare_to_baseline",
    "default_basket",
    "describe",
    "host_metadata",
    "kv_smoke_basket",
    "quick_basket",
    "run_engine_bench",
    "speedup_ratio",
]
