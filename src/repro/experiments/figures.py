"""Per-figure experiment generators.

Each ``figureN`` function reruns the simulations behind one figure of the
paper's evaluation and returns a :class:`FigureResult` whose ``rows`` hold
the same series the paper plots and whose ``text`` is a printable table.
Durations default to values that keep a full regeneration tractable on a
laptop; pass larger ``duration_ms`` for tighter statistics.

Grid-shaped figures execute through :func:`repro.experiments.harness.run_grid`
and therefore inherit the execution defaults installed with
:func:`repro.experiments.harness.default_execution` — wrap a figure call in
that context manager (or use ``repro figure N --backend process``) to fan
its cells out over a process pool and/or persist them in a
:class:`~repro.experiments.store.ResultStore` without changing any figure
signature.  Results are bit-for-bit identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.adaptivity import IterativeParameterOptimizer, OptimizationTrace, ParameterPoint
from repro.core.config import DreamConfig, OptimizationObjective
from repro.core.dream import DreamScheduler
from repro.experiments.harness import ExperimentCell, GridResult, run_grid
from repro.experiments.sweeps import cascade_probability_sweep, parameter_grid, uxcost_objective
from repro.hardware import make_platform
from repro.hardware.platform import heterogeneous_platform_names, homogeneous_platform_names
from repro.metrics.reporting import format_table, geometric_mean
from repro.sim import run_simulation
from repro.workloads import build_scenario, scenario_names


@dataclass
class FigureResult:
    """Structured output of one figure regeneration."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.name}: {self.description}\n{self.text}"


#: Platform styles used by the motivation experiment (Figure 2).
_FIGURE2_PLATFORMS = ["4k_2ws", "4k_2os", "4k_1ws_2os", "4k_1os_2ws"]

#: Schedulers compared in the main evaluation figures.
_MAIN_SCHEDULERS = ["fcfs_dynamic", "veltair", "planaria", "dream_mapscore", "dream_smartdrop", "dream_full"]


def figure2(duration_ms: float = 800.0, seed: int = 0) -> FigureResult:
    """Figure 2: static vs dynamic FCFS deadline-violation rate on AR_Call."""
    grid = run_grid(
        scenarios=["ar_call"],
        platforms=_FIGURE2_PLATFORMS,
        schedulers=["fcfs_static", "fcfs_dynamic"],
        duration_ms=duration_ms,
        seed=seed,
    )
    rows = []
    reductions = []
    for platform in _FIGURE2_PLATFORMS:
        static = grid.results[ExperimentCell("ar_call", platform, "fcfs_static")]
        dynamic = grid.results[ExperimentCell("ar_call", platform, "fcfs_dynamic")]
        static_rate = static.overall_violation_rate
        dynamic_rate = dynamic.overall_violation_rate
        reduction = 0.0 if static_rate == 0 else 1.0 - dynamic_rate / static_rate
        reductions.append(reduction)
        rows.append(
            {
                "platform": platform,
                "static_violation_rate": static_rate,
                "dynamic_violation_rate": dynamic_rate,
                "reduction": reduction,
            }
        )
    text = format_table(
        ["platform", "static DLV", "dynamic DLV", "reduction"],
        [[r["platform"], r["static_violation_rate"], r["dynamic_violation_rate"], r["reduction"]] for r in rows],
    )
    return FigureResult(
        name="figure2",
        description="Deadline violation rate of static vs dynamic FCFS on AR_Call (paper: ~53% average reduction)",
        rows=rows,
        summary={"mean_reduction": sum(reductions) / len(reductions)},
        text=text,
    )


def _main_comparison(platforms: Sequence[str], duration_ms: float, seed: int) -> tuple[GridResult, list[dict]]:
    grid = run_grid(
        scenarios=scenario_names(),
        platforms=list(platforms),
        schedulers=_MAIN_SCHEDULERS,
        duration_ms=duration_ms,
        seed=seed,
    )
    rows = []
    for cell, result in sorted(grid.results.items(), key=lambda item: item[0].key):
        breakdown = result.uxcost_breakdown
        rows.append(
            {
                "scenario": cell.scenario,
                "platform": cell.platform,
                "scheduler": cell.scheduler,
                "uxcost": breakdown.uxcost,
                "violation_rate_factor": breakdown.overall_violation_rate,
                "normalized_energy_factor": breakdown.overall_normalized_energy,
                "overall_violation_rate": result.overall_violation_rate,
                "dropped_frames": result.dropped_frames,
            }
        )
    return grid, rows


def figure7(duration_ms: float = 800.0, seed: int = 0) -> FigureResult:
    """Figure 7: UXCost / DLV rate / energy on heterogeneous platforms."""
    grid, rows = _main_comparison(heterogeneous_platform_names(), duration_ms, seed)
    summary = {
        "dream_full_vs_planaria": grid.geomean_reduction("dream_full", "planaria"),
        "dream_full_vs_veltair": grid.geomean_reduction("dream_full", "veltair"),
        "dream_mapscore_vs_planaria": grid.geomean_reduction("dream_mapscore", "planaria"),
    }
    text = format_table(
        ["scenario", "platform", "scheduler", "UXCost", "DLV factor", "energy factor"],
        [[r["scenario"], r["platform"], r["scheduler"], r["uxcost"], r["violation_rate_factor"], r["normalized_energy_factor"]] for r in rows],
    )
    return FigureResult(
        name="figure7",
        description="Heterogeneous-platform comparison (paper: DREAM cuts UXCost ~32% vs Planaria, ~50% vs Veltair geomean)",
        rows=rows,
        summary=summary,
        text=text,
    )


def figure8(duration_ms: float = 800.0, seed: int = 0) -> FigureResult:
    """Figure 8: UXCost on homogeneous platforms (gap narrows with abundance)."""
    grid, rows = _main_comparison(homogeneous_platform_names(), duration_ms, seed)
    summary = {
        "dream_full_vs_planaria": grid.geomean_reduction("dream_full", "planaria"),
        "dream_full_vs_veltair": grid.geomean_reduction("dream_full", "veltair"),
    }
    text = format_table(
        ["scenario", "platform", "scheduler", "UXCost"],
        [[r["scenario"], r["platform"], r["scheduler"], r["uxcost"]] for r in rows],
    )
    return FigureResult(
        name="figure8",
        description="Homogeneous-platform comparison (paper: smaller but still positive DREAM advantage)",
        rows=rows,
        summary=summary,
        text=text,
    )


def figure9(duration_ms: float = 1500.0, seed: int = 0) -> FigureResult:
    """Figure 9: UXCost improvement breakdown of DREAM's optimizations."""
    scenarios = ["vr_gaming", "ar_social"]
    platforms = ["4k_1ws_2os", "8k_1ws_2os"]
    schedulers = ["dream_fixed", "dream_mapscore", "dream_smartdrop", "dream_full"]
    grid = run_grid(scenarios, platforms, schedulers, duration_ms=duration_ms, seed=seed)
    rows = []
    summary = {}
    for platform in platforms:
        base = geometric_mean(
            [grid.results[ExperimentCell(s, platform, "dream_fixed")].uxcost for s in scenarios]
        )
        for scheduler in schedulers:
            value = geometric_mean(
                [grid.results[ExperimentCell(s, platform, scheduler)].uxcost for s in scenarios]
            )
            improvement = 0.0 if base <= 0 else 1.0 - value / base
            rows.append(
                {
                    "platform": platform,
                    "scheduler": scheduler,
                    "geomean_uxcost": value,
                    "improvement_vs_fixed": improvement,
                }
            )
            summary[f"{platform}/{scheduler}"] = improvement
    text = format_table(
        ["platform", "scheduler", "geomean UXCost", "improvement vs fixed"],
        [[r["platform"], r["scheduler"], r["geomean_uxcost"], r["improvement_vs_fixed"]] for r in rows],
    )
    return FigureResult(
        name="figure9",
        description="Optimization breakdown on VR_Gaming + AR_Social (paper: param opt 49%/21%, +smart drop ~16%/14%, +Supernet 6-9%)",
        rows=rows,
        summary=summary,
        text=text,
    )


#: Workload-change cases of Figure 10 (platform 4K 1OS+2WS).
_FIGURE10_CASES = [
    ("idle->vr_gaming", None, "vr_gaming"),
    ("idle->ar_social", None, "ar_social"),
    ("idle->ar_call", None, "ar_call"),
    ("vr_gaming->ar_social", "vr_gaming", "ar_social"),
]


def figure10(
    duration_ms: float = 300.0,
    seed: int = 0,
    platform_name: str = "4k_1os_2ws",
    grid_values: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
) -> FigureResult:
    """Figure 10: (alpha, beta) search under workload changes vs the global optimum."""
    rows = []
    traces: dict[str, OptimizationTrace] = {}
    previous_end: Optional[ParameterPoint] = None
    for case_name, previous_scenario, target_scenario in _FIGURE10_CASES:
        objective = uxcost_objective(
            target_scenario, platform_name, duration_ms=duration_ms, seed=seed
        )
        if previous_scenario is None:
            # "IDLE": the system boots with arbitrary parameters.
            start = ParameterPoint(1.5, 0.5)
        else:
            start = previous_end or ParameterPoint(1.0, 1.0)
        optimizer = IterativeParameterOptimizer(objective)
        trace = optimizer.optimize(start)
        traces[case_name] = trace
        grid = parameter_grid(objective, values=grid_values)
        global_best = min(grid.values())
        gap = 0.0 if global_best <= 0 else trace.final_cost / global_best - 1.0
        rows.append(
            {
                "case": case_name,
                "start": (start.alpha, start.beta),
                "final": (trace.final_point.alpha, trace.final_point.beta),
                "final_cost": trace.final_cost,
                "global_best_cost": global_best,
                "gap_to_global": gap,
                "steps": len(trace.steps),
            }
        )
        if case_name == "idle->vr_gaming":
            previous_end = trace.final_point
    text = format_table(
        ["case", "final alpha", "final beta", "final cost", "grid best", "gap"],
        [[r["case"], r["final"][0], r["final"][1], r["final_cost"], r["global_best_cost"], r["gap_to_global"]] for r in rows],
    )
    result = FigureResult(
        name="figure10",
        description="Parameter search under workload changes (paper: converges within ~2% of the global optimum)",
        rows=rows,
        summary={"mean_gap": sum(r["gap_to_global"] for r in rows) / len(rows)},
        text=text,
    )
    result.summary["traces"] = traces
    return result


def figure11(
    duration_ms: float = 300.0,
    seed: int = 0,
    platform_name: str = "4k_1os_2ws",
) -> FigureResult:
    """Figure 11: convergence speed of the parameter optimization."""
    rows = []
    for case_name, previous_scenario, target_scenario in _FIGURE10_CASES:
        objective = uxcost_objective(
            target_scenario, platform_name, duration_ms=duration_ms, seed=seed
        )
        start = ParameterPoint(1.5, 0.5)
        optimizer = IterativeParameterOptimizer(objective)
        trace = optimizer.optimize(start)
        costs = trace.costs_per_step()
        initial = objective(start.alpha, start.beta)
        improvements = [0.0 if initial <= 0 else 1.0 - cost / initial for cost in costs]
        rows.append(
            {
                "case": case_name,
                "initial_cost": initial,
                "costs_per_step": costs,
                "improvement_per_step": improvements,
                "improvement_after_2_steps": improvements[1] if len(improvements) > 1 else improvements[-1],
                "steps_to_converge": len(costs),
            }
        )
    text = format_table(
        ["case", "initial cost", "improvement@2 steps", "steps"],
        [[r["case"], r["initial_cost"], r["improvement_after_2_steps"], r["steps_to_converge"]] for r in rows],
    )
    return FigureResult(
        name="figure11",
        description="Optimization convergence (paper: >25% UXCost improvement within two steps, converged within five)",
        rows=rows,
        summary={},
        text=text,
    )


def figure12(
    duration_ms: float = 800.0,
    seed: int = 0,
    probabilities: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
    platforms: Sequence[str] = ("4k_1ws_2os", "4k_1os_2ws"),
) -> FigureResult:
    """Figure 12: UXCost while sweeping the ML-cascade probability."""
    schedulers = ["veltair", "planaria", "dream_mapscore", "dream_smartdrop", "dream_full"]
    rows = []
    for scenario in ("vr_gaming", "ar_social"):
        for platform in platforms:
            sweep = cascade_probability_sweep(
                scenario, platform, schedulers, probabilities, duration_ms=duration_ms, seed=seed
            )
            for probability, results in sweep.items():
                for scheduler, result in results.items():
                    rows.append(
                        {
                            "scenario": scenario,
                            "platform": platform,
                            "cascade_probability": probability,
                            "scheduler": scheduler,
                            "uxcost": result.uxcost,
                            "violation_rate": result.overall_violation_rate,
                            "dropped_frames": result.dropped_frames,
                        }
                    )
    text = format_table(
        ["scenario", "platform", "p", "scheduler", "UXCost", "DLV"],
        [[r["scenario"], r["platform"], r["cascade_probability"], r["scheduler"], r["uxcost"], r["violation_rate"]] for r in rows],
    )
    return FigureResult(
        name="figure12",
        description="Cascade-probability sweep (paper: DREAM's advantage grows with load; SmartDrop/Supernet help most at 99%)",
        rows=rows,
        summary={},
        text=text,
    )


def figure13(
    duration_ms: float = 1200.0,
    seed: int = 0,
    platform_name: str = "4k_1ws_2os",
    probabilities: Sequence[float] = (0.5, 0.9),
) -> FigureResult:
    """Figure 13: optimizing DLV-only or energy-only degrades the other metric."""
    objectives = [
        OptimizationObjective.UXCOST,
        OptimizationObjective.DEADLINE_ONLY,
        OptimizationObjective.ENERGY_ONLY,
    ]
    platform = make_platform(platform_name)
    rows = []
    for scenario_name in ("vr_gaming", "ar_social"):
        for probability in probabilities:
            scenario = build_scenario(scenario_name, cascade_probability=probability)
            reference: Optional[dict] = None
            for objective in objectives:
                config = DreamConfig(
                    enable_parameter_optimization=True,
                    enable_frame_drop=True,
                    enable_supernet_switching=True,
                ).with_objective(objective)
                scheduler = DreamScheduler(config, name=f"dream_{objective.value}")
                result = run_simulation(
                    scenario=scenario,
                    platform=platform,
                    scheduler=scheduler,
                    duration_ms=duration_ms,
                    seed=seed,
                )
                breakdown = result.uxcost_breakdown
                record = {
                    "scenario": scenario_name,
                    "cascade_probability": probability,
                    "objective": objective.value,
                    "uxcost": breakdown.uxcost,
                    "violation_factor": breakdown.overall_violation_rate,
                    "energy_factor": breakdown.overall_normalized_energy,
                }
                if objective is OptimizationObjective.UXCOST:
                    reference = record
                if reference is not None:
                    record["uxcost_vs_uxcost_objective"] = (
                        record["uxcost"] / reference["uxcost"] if reference["uxcost"] > 0 else 1.0
                    )
                rows.append(record)
    text = format_table(
        ["scenario", "p", "objective", "UXCost", "DLV factor", "energy factor"],
        [[r["scenario"], r["cascade_probability"], r["objective"], r["uxcost"], r["violation_factor"], r["energy_factor"]] for r in rows],
    )
    return FigureResult(
        name="figure13",
        description="Optimization-objective ablation (paper: single-metric objectives degrade the other metric and overall UXCost)",
        rows=rows,
        summary={},
        text=text,
    )


def figure14(
    duration_ms: float = 800.0,
    seed: int = 0,
    probabilities: Sequence[float] = (0.5, 0.99),
    platforms: Sequence[str] = ("4k_1ws_2os", "4k_1os_2ws"),
) -> FigureResult:
    """Figure 14: Supernet subnet mix selected by DREAM under load."""
    rows = []
    for scenario_name in ("vr_gaming", "ar_social"):
        for platform in platforms:
            sweep = cascade_probability_sweep(
                scenario_name,
                platform,
                ["dream_full"],
                probabilities,
                duration_ms=duration_ms,
                seed=seed,
            )
            for probability, results in sweep.items():
                result = results["dream_full"]
                mix = result.variant_mix("context_understanding")
                rows.append(
                    {
                        "scenario": scenario_name,
                        "platform": platform,
                        "cascade_probability": probability,
                        "variant_mix": mix,
                        "original_fraction": mix.get("ofa_original", 0.0),
                        "lighter_fraction": 1.0 - mix.get("ofa_original", 0.0) if mix else 0.0,
                        "supernet_switches": result.scheduler_info.get("supernet_switches", 0),
                    }
                )
    text = format_table(
        ["scenario", "platform", "p", "original fraction", "lighter fraction"],
        [[r["scenario"], r["platform"], r["cascade_probability"], r["original_fraction"], r["lighter_fraction"]] for r in rows],
    )
    return FigureResult(
        name="figure14",
        description="Executed Supernet variants (paper: mostly the original under light load, >40-60% lighter variants under heavy load)",
        rows=rows,
        summary={},
        text=text,
    )


#: All figure generators keyed by name (used by examples and benchmarks).
ALL_FIGURES = {
    "figure2": figure2,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
}
