"""Grid runner shared by all figure generators.

The evaluation is a grid of (scenario, platform, scheduler) cells, each
cell being one simulation.  Since the parallel-backend refactor the
harness is a thin orchestration layer over three pieces:

* :mod:`repro.experiments.jobs` — every cell is a picklable
  :class:`~repro.experiments.jobs.CellJob` (preset names + scalars) whose
  ``run()`` builds a fresh scheduler via ``make_scheduler`` and reuses a
  process-local (scenario, platform, cost-table) context cache, so cost
  tables are still built once per (scenario, platform) pair.
* :mod:`repro.experiments.backends` — jobs execute on a pluggable backend:
  ``serial`` (in-process reference) or ``process``
  (:class:`concurrent.futures.ProcessPoolExecutor`).  Both run the same
  job code, so results are bit-for-bit identical across backends.
* :mod:`repro.experiments.store` — an optional content-keyed on-disk
  :class:`~repro.experiments.store.ResultStore`; cells whose job hash is
  already persisted are skipped and loaded instead of re-simulated.

:func:`default_execution` installs a backend/store for a whole code region,
which is how the ``repro`` CLI routes the untouched ``figure*`` generators
through the process pool without changing their signatures.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

from repro.experiments.backends import BackendLike, make_backend
from repro.experiments.jobs import (
    CellJob,
    ExperimentCell,
    PhasedJob,
    grid_jobs,
)
from repro.experiments.store import ResultStore
from repro.hardware import make_platform
from repro.metrics.reporting import geometric_mean
from repro.schedulers import make_scheduler
from repro.sim import SimulationResult, run_simulation
from repro.workloads import build_scenario
from repro.workloads.dynamicity import PhasedWorkload

__all__ = [
    "ExperimentCell",
    "GridResult",
    "ExecutionDefaults",
    "default_execution",
    "get_execution_defaults",
    "execute_jobs",
    "run_cell",
    "run_grid",
    "run_phased_workload",
]


@dataclass
class GridResult:
    """All simulation results of one grid run."""

    results: dict[ExperimentCell, SimulationResult] = field(default_factory=dict)

    def uxcost(self, cell: ExperimentCell) -> float:
        """UXCost of one cell."""
        return self.results[cell].uxcost

    def by_scheduler(self, scenario: str, platform: str) -> dict[str, SimulationResult]:
        """Results of all schedulers for one (scenario, platform) pair."""
        return {
            cell.scheduler: result
            for cell, result in self.results.items()
            if cell.scenario == scenario and cell.platform == platform
        }

    def uxcost_table(self) -> dict[str, dict[str, float]]:
        """Nested mapping ``"scenario/platform" -> scheduler -> UXCost``."""
        table: dict[str, dict[str, float]] = {}
        for cell, result in self.results.items():
            config = f"{cell.scenario}/{cell.platform}"
            table.setdefault(config, {})[cell.scheduler] = result.uxcost
        return table

    def geomean_uxcost(self, scheduler: str) -> float:
        """Geometric-mean UXCost of one scheduler across all its cells."""
        values = [
            result.uxcost
            for cell, result in self.results.items()
            if cell.scheduler == scheduler
        ]
        return geometric_mean(values)

    def geomean_reduction(self, target: str, baseline: str) -> float:
        """Geomean fractional UXCost reduction of ``target`` vs ``baseline``.

        Computed per (scenario, platform) configuration and aggregated with
        the geometric mean, matching how the paper reports its headline
        numbers.
        """
        ratios = []
        for config, by_scheduler in self.uxcost_table().items():
            if target in by_scheduler and baseline in by_scheduler and by_scheduler[baseline] > 0:
                ratios.append(max(by_scheduler[target], 1e-12) / by_scheduler[baseline])
        if not ratios:
            return 0.0
        return 1.0 - geometric_mean(ratios)

    def to_dict(self) -> dict:
        """JSON-serializable form keyed by ``scenario/platform/scheduler``."""
        return {
            "cells": {
                cell.key: result.to_dict()
                for cell, result in sorted(self.results.items(), key=lambda item: item[0].key)
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GridResult":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            results={
                ExperimentCell.from_key(key): SimulationResult.from_dict(result)
                for key, result in data["cells"].items()
            }
        )


# --------------------------------------------------------------------- #
# execution defaults (how the CLI re-routes figure generators)
# --------------------------------------------------------------------- #


@dataclass
class ExecutionDefaults:
    """Backend/store applied when a caller does not pass them explicitly."""

    backend: BackendLike = "serial"
    workers: Optional[int] = None
    store: Optional[ResultStore] = None


_defaults = ExecutionDefaults()


def get_execution_defaults() -> ExecutionDefaults:
    """The currently installed execution defaults."""
    return _defaults


@contextmanager
def default_execution(
    backend: Optional[BackendLike] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Iterator[ExecutionDefaults]:
    """Temporarily change the default backend/workers/store.

    Any argument left as ``None`` keeps its current default.  Every
    ``run_grid`` call inside the ``with`` body — including the ones made
    deep inside figure generators — picks these up, which lets the CLI run
    an unmodified figure through the process backend::

        with default_execution(backend="process", workers=4):
            figures.figure7()
    """
    global _defaults
    previous = _defaults
    _defaults = replace(
        previous,
        backend=backend if backend is not None else previous.backend,
        workers=workers if workers is not None else previous.workers,
        store=store if store is not None else previous.store,
    )
    try:
        yield _defaults
    finally:
        _defaults = previous


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #


def execute_jobs(
    jobs: Sequence[CellJob],
    backend: Optional[BackendLike] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> list[SimulationResult]:
    """Execute cell jobs on a backend, consulting the store first.

    Cells already persisted in the store are loaded instead of re-run; the
    remainder is dispatched to the backend in one batch and persisted on
    completion.  Results come back in job order regardless of cache state.

    Args:
        jobs: the cell jobs to compute.
        backend: backend name or instance; defaults per
            :func:`default_execution` (initially ``"serial"``).
        workers: pool size for the ``process`` backend.
        store: optional :class:`ResultStore`; defaults per
            :func:`default_execution` (initially no store).
    """
    defaults = get_execution_defaults()
    resolved = make_backend(
        backend if backend is not None else defaults.backend,
        workers=workers if workers is not None else defaults.workers,
    )
    store = store if store is not None else defaults.store

    jobs = list(jobs)
    results: list[Optional[SimulationResult]] = [None] * len(jobs)
    pending: list[tuple[int, CellJob]] = []
    if store is None:
        pending = list(enumerate(jobs))
    else:
        for index, job in enumerate(jobs):
            cached = store.get(job)
            if cached is None:
                pending.append((index, job))
            else:
                results[index] = cached
    if pending:
        computed = resolved.run_jobs([job for _, job in pending])
        for (index, job), result in zip(pending, computed):
            results[index] = result
            if store is not None:
                store.put(job, result)
    return results  # type: ignore[return-value]


def run_cell(
    cell: ExperimentCell,
    duration_ms: float,
    seed: int = 0,
    cascade_probability: float = 0.5,
    cost_table=None,
    scenario=None,
    platform=None,
    **engine_kwargs,
) -> SimulationResult:
    """Run one grid cell (one simulation).

    With no prebuilt objects this delegates to the picklable
    :class:`CellJob` path (the same code both backends execute).  Passing
    ``scenario``/``platform``/``cost_table`` overrides keeps the historical
    escape hatch for callers that hold custom-built objects; the cell's
    names then only have to resolve for the pieces NOT overridden, and a
    missing cost table is built by the engine from the actual objects.
    """
    if cost_table is None and scenario is None and platform is None:
        return CellJob.create(
            scenario=cell.scenario,
            platform=cell.platform,
            scheduler=cell.scheduler,
            duration_ms=duration_ms,
            seed=seed,
            cascade_probability=cascade_probability,
            **engine_kwargs,
        ).run()
    scenario = scenario or build_scenario(cell.scenario, cascade_probability=cascade_probability)
    platform = platform or make_platform(cell.platform)
    return run_simulation(
        scenario=scenario,
        platform=platform,
        scheduler=make_scheduler(cell.scheduler),
        duration_ms=duration_ms,
        seed=seed,
        cost_table=cost_table,
        **engine_kwargs,
    )


def run_grid(
    scenarios: Sequence[str],
    platforms: Sequence[str],
    schedulers: Sequence[str],
    duration_ms: float = 1000.0,
    seed: int = 0,
    cascade_probability: float = 0.5,
    backend: Optional[BackendLike] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    **engine_kwargs,
) -> GridResult:
    """Run the full (scenario x platform x scheduler) grid.

    Each cell becomes a :class:`CellJob` executed on the selected backend.
    Cost tables are built once per (scenario, platform) pair per process —
    exactly as the paper's offline cost-model stage would — via the
    process-local context cache, and every cell gets a fresh scheduler, so
    serial and process backends produce bit-for-bit identical results.

    Args:
        scenarios / platforms / schedulers: preset names spanning the grid.
        duration_ms: simulated window length per cell.
        seed: seed shared by every cell (each cell's simulation re-seeds
            from it deterministically).
        cascade_probability: ML-cascade trigger probability.
        backend: ``"serial"`` (default), ``"process"``, or a backend
            instance; see :func:`default_execution`.
        workers: pool size for the ``process`` backend.
        store: optional result cache; hits skip simulation entirely.
        **engine_kwargs: extra scalar :class:`~repro.sim.SimulationEngine`
            kwargs applied to every cell.
    """
    jobs = grid_jobs(
        scenarios,
        platforms,
        schedulers,
        duration_ms=duration_ms,
        seed=seed,
        cascade_probability=cascade_probability,
        **engine_kwargs,
    )
    results = execute_jobs(jobs, backend=backend, workers=workers, store=store)
    return GridResult(results={job.cell: result for job, result in zip(jobs, results)})


def run_phased_workload(
    workload: PhasedWorkload,
    platform_name: str,
    scheduler_name: str,
    seed: int = 0,
    **engine_kwargs,
) -> list[SimulationResult]:
    """Run a multi-phase workload (task-level dynamicity, Figures 10/11).

    Delegates to :class:`~repro.experiments.jobs.PhasedJob`, which creates
    the scheduler once through the same ``make_scheduler`` path grid cells
    use and documents the seed contract: phase ``i`` runs with seed
    ``seed + i`` while the scheduler instance (and therefore DREAM's tuned
    (alpha, beta)) carries over the usage-scenario change — exactly the
    adaptation the paper studies.

    Phase-boundary semantics: each phase is an independent
    :class:`~repro.sim.SimulationEngine` run, so requests still in flight
    when a phase's window ends are **discarded at the boundary** (they are
    finalized as unfinished in that phase's result and are *not* carried
    into the next phase) — only scheduler state crosses phases, work does
    not.  This models the runtime flushing its queues on a usage-scenario
    switch; a request that should survive a boundary would have to be
    re-issued by its (still-present) task in the next phase.
    """
    return PhasedJob.create(
        workload=workload,
        platform=platform_name,
        scheduler=scheduler_name,
        seed=seed,
        **engine_kwargs,
    ).run()
