"""Grid runner shared by all figure generators.

The evaluation is a grid of (scenario, platform, scheduler) cells, each
cell being one simulation.  The harness caches cost tables per
(scenario, platform) pair — they are identical for every scheduler — and
returns results in a structure the figure generators and benchmarks can
aggregate without re-running anything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.hardware import CostTable, Platform, make_platform
from repro.metrics.reporting import geometric_mean
from repro.schedulers import make_scheduler
from repro.sim import SimulationResult, run_simulation
from repro.workloads import Scenario, build_scenario
from repro.workloads.dynamicity import PhasedWorkload


@dataclass(frozen=True)
class ExperimentCell:
    """One (scenario, platform, scheduler) point of an evaluation grid."""

    scenario: str
    platform: str
    scheduler: str

    @property
    def key(self) -> str:
        """Stable string key for result dictionaries."""
        return f"{self.scenario}/{self.platform}/{self.scheduler}"


@dataclass
class GridResult:
    """All simulation results of one grid run."""

    results: dict[ExperimentCell, SimulationResult] = field(default_factory=dict)

    def uxcost(self, cell: ExperimentCell) -> float:
        """UXCost of one cell."""
        return self.results[cell].uxcost

    def by_scheduler(self, scenario: str, platform: str) -> dict[str, SimulationResult]:
        """Results of all schedulers for one (scenario, platform) pair."""
        return {
            cell.scheduler: result
            for cell, result in self.results.items()
            if cell.scenario == scenario and cell.platform == platform
        }

    def uxcost_table(self) -> dict[str, dict[str, float]]:
        """Nested mapping ``"scenario/platform" -> scheduler -> UXCost``."""
        table: dict[str, dict[str, float]] = {}
        for cell, result in self.results.items():
            config = f"{cell.scenario}/{cell.platform}"
            table.setdefault(config, {})[cell.scheduler] = result.uxcost
        return table

    def geomean_uxcost(self, scheduler: str) -> float:
        """Geometric-mean UXCost of one scheduler across all its cells."""
        values = [
            result.uxcost
            for cell, result in self.results.items()
            if cell.scheduler == scheduler
        ]
        return geometric_mean(values)

    def geomean_reduction(self, target: str, baseline: str) -> float:
        """Geomean fractional UXCost reduction of ``target`` vs ``baseline``.

        Computed per (scenario, platform) configuration and aggregated with
        the geometric mean, matching how the paper reports its headline
        numbers.
        """
        ratios = []
        for config, by_scheduler in self.uxcost_table().items():
            if target in by_scheduler and baseline in by_scheduler and by_scheduler[baseline] > 0:
                ratios.append(max(by_scheduler[target], 1e-12) / by_scheduler[baseline])
        if not ratios:
            return 0.0
        return 1.0 - geometric_mean(ratios)


def run_cell(
    cell: ExperimentCell,
    duration_ms: float,
    seed: int = 0,
    cascade_probability: float = 0.5,
    cost_table: Optional[CostTable] = None,
    scenario: Optional[Scenario] = None,
    platform: Optional[Platform] = None,
    **engine_kwargs,
) -> SimulationResult:
    """Run one grid cell (one simulation)."""
    scenario = scenario or build_scenario(cell.scenario, cascade_probability=cascade_probability)
    platform = platform or make_platform(cell.platform)
    scheduler = make_scheduler(cell.scheduler)
    return run_simulation(
        scenario=scenario,
        platform=platform,
        scheduler=scheduler,
        duration_ms=duration_ms,
        seed=seed,
        cost_table=cost_table,
        **engine_kwargs,
    )


def run_grid(
    scenarios: Sequence[str],
    platforms: Sequence[str],
    schedulers: Sequence[str],
    duration_ms: float = 1000.0,
    seed: int = 0,
    cascade_probability: float = 0.5,
    **engine_kwargs,
) -> GridResult:
    """Run the full (scenario x platform x scheduler) grid.

    Cost tables are built once per (scenario, platform) pair and shared by
    every scheduler, exactly as the paper's offline cost-model stage would.
    """
    grid = GridResult()
    for scenario_name in scenarios:
        scenario = build_scenario(scenario_name, cascade_probability=cascade_probability)
        for platform_name in platforms:
            platform = make_platform(platform_name)
            cost_table = CostTable.build(platform, scenario.all_model_graphs())
            for scheduler_name in schedulers:
                cell = ExperimentCell(scenario_name, platform_name, scheduler_name)
                grid.results[cell] = run_cell(
                    cell,
                    duration_ms=duration_ms,
                    seed=seed,
                    cascade_probability=cascade_probability,
                    cost_table=cost_table,
                    scenario=scenario,
                    platform=platform,
                    **engine_kwargs,
                )
    return grid


def run_phased_workload(
    workload: PhasedWorkload,
    platform_name: str,
    scheduler_name: str,
    seed: int = 0,
    **engine_kwargs,
) -> list[SimulationResult]:
    """Run a multi-phase workload (task-level dynamicity, Figures 10/11).

    The same scheduler object is reused across phases so its internal state
    — most importantly DREAM's tuned (alpha, beta) — carries over the
    usage-scenario change, which is exactly the adaptation the paper
    studies.
    """
    platform = make_platform(platform_name)
    scheduler = make_scheduler(scheduler_name)
    results = []
    for index, phase in enumerate(workload.phases):
        result = run_simulation(
            scenario=phase.scenario,
            platform=platform,
            scheduler=scheduler,
            duration_ms=phase.duration_ms,
            seed=seed + index,
            **engine_kwargs,
        )
        results.append(result)
    return results
