"""First-come-first-served schedulers (the Figure 2 motivation experiment).

Two variants are modelled, matching Section 2.3:

* :class:`DynamicFcfsScheduler` — at run time, whenever an accelerator is
  idle, the oldest pending request is dispatched to it at model granularity
  (all remaining layers back-to-back).  This is the "dynamic FCFS" used as a
  baseline in the evaluation (Nexus / Clockwork style model-wise FCFS).

* :class:`StaticFcfsScheduler` — an offline schedule built for the worst
  case.  Tasks are statically pinned to accelerators (load-balanced by
  worst-case demand at bind time) and the scheduler *reserves* each
  accelerator for a request's worst-case path duration: even if the dynamic
  path finishes early (layer skipping, early exit, an untriggered cascade),
  the reservation is not released to other tasks.  This is how a static
  schedule must behave when the workload is non-deterministic — it plans
  for the longest path (Section 2.2) — and is what makes it lose Figure 2.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, WakeHint
from repro.sim.decisions import Assignment, SchedulingDecision, SystemView


class DynamicFcfsScheduler(Scheduler):
    """Model-granularity dynamic FCFS: oldest request, first idle accelerator."""

    name = "fcfs_dynamic"

    def wake_hint(self) -> WakeHint:
        """Pure function of the view: inert without pending work or a fully
        idle accelerator (assignments are the only thing it ever emits)."""
        return WakeHint(min_free_fraction=1.0, elide_when_no_pending=True)

    def schedule(self, view: SystemView) -> SchedulingDecision:
        assignments = []
        idle = [acc for acc in view.accelerators if acc.is_idle]
        if not idle:
            return SchedulingDecision.empty()
        # ``pending_requests`` is already ordered by (arrival_ms, request_id),
        # so walking it front-to-back picks exactly the oldest unassigned
        # request for each idle accelerator.
        pending = iter(
            request for request in view.pending_requests if request.remaining_layers
        )
        for acc in idle:
            candidate = next(pending, None)
            if candidate is None:
                break
            assignments.append(
                Assignment(
                    request=candidate,
                    acc_id=acc.acc_id,
                    layer_count=candidate.remaining_layers,
                )
            )
        return SchedulingDecision.of(assignments)


class StaticFcfsScheduler(Scheduler):
    """Statically pinned FCFS with worst-case reservations.

    Args:
        reservation_slack: multiplier on the worst-case reservation length;
            1.0 reserves exactly the worst-case path latency of the model on
            its pinned accelerator.
    """

    name = "fcfs_static"

    def __init__(self, reservation_slack: float = 1.0) -> None:
        super().__init__()
        if reservation_slack <= 0:
            raise ValueError("reservation_slack must be positive")
        self.reservation_slack = reservation_slack
        self._task_to_acc: dict[str, int] = {}
        self._reserved_until: dict[int, float] = {}
        self._worst_case_ms: dict[str, float] = {}

    def wake_hint(self) -> WakeHint:
        """Inert without pending work or an idle accelerator.

        ``_reserved_until`` is internal state, but it is only ever written
        on the assignment path — a call that finds no idle accelerator (or
        no pending request) returns empty without touching it, so the hint
        holds at any instant.
        """
        return WakeHint(min_free_fraction=1.0, elide_when_no_pending=True)

    def bind(self, platform, cost_table, scenario, rng) -> None:
        super().bind(platform, cost_table, scenario, rng)
        self._reserved_until = {acc.acc_id: 0.0 for acc in platform}
        self._task_to_acc = {}
        self._worst_case_ms = {}
        # Offline static mapping: order tasks by worst-case demand and pin
        # each to the accelerator with the least accumulated demand.  Like
        # the static schedulers surveyed in the paper (Table 5), the planner
        # is deadline-aware but *not* heterogeneity-aware: its latency
        # estimate only sees PE counts (work / peak throughput at a generic
        # efficiency), not dataflow preference — so on heterogeneous
        # platforms a model can be pinned to an accelerator that executes it
        # far slower than planned.
        generic_efficiency = 0.4
        acc_load = {acc.acc_id: 0.0 for acc in platform}
        demands = []
        for task in scenario.tasks:
            model = task.default_model
            worst_macs = sum(model.layers[i].macs for i in model.worst_case_path())
            per_acc_estimate = [
                worst_macs / (acc.peak_macs_per_ms * generic_efficiency)
                for acc in platform
            ]
            demands.append((task, per_acc_estimate))
        demands.sort(key=lambda item: -max(item[1]) * item[0].fps)
        for task, per_acc_estimate in demands:
            acc_id = min(
                acc_load,
                key=lambda candidate: acc_load[candidate]
                + per_acc_estimate[candidate] * task.fps / 1000.0,
            )
            self._task_to_acc[task.name] = acc_id
            acc_load[acc_id] += per_acc_estimate[acc_id] * task.fps / 1000.0
            # The reservation blocks the accelerator for the worst-case path
            # of the model on its pinned accelerator (true duration — the
            # plan must cover the longest path, Section 2.2).
            model = task.default_model
            self._worst_case_ms[task.name] = sum(
                cost_table.latency(model.name, layer_index, acc_id)
                for layer_index in model.worst_case_path()
            )

    def schedule(self, view: SystemView) -> SchedulingDecision:
        assignments = []
        assigned_ids: set[int] = set()
        for acc in view.accelerators:
            if not acc.is_idle:
                continue
            if view.now_ms + 1e-9 < self._reserved_until.get(acc.acc_id, 0.0):
                continue
            # ``pending_requests`` is (arrival_ms, request_id)-ordered, so the
            # first match is the oldest candidate for this accelerator.
            request = next(
                (
                    candidate
                    for candidate in view.pending_requests
                    if candidate.request_id not in assigned_ids
                    and candidate.remaining_layers
                    and self._task_to_acc.get(candidate.task_name) == acc.acc_id
                ),
                None,
            )
            if request is None:
                continue
            assignments.append(
                Assignment(
                    request=request,
                    acc_id=acc.acc_id,
                    layer_count=request.remaining_layers,
                )
            )
            assigned_ids.add(request.request_id)
            reservation = self._worst_case_ms.get(request.task_name, 0.0) * self.reservation_slack
            self._reserved_until[acc.acc_id] = view.now_ms + reservation
        return SchedulingDecision.of(assignments)

    def info(self):
        return {"task_to_accelerator": dict(self._task_to_acc)}
