"""Planaria-style deadline-aware spatial-fission scheduler [8].

Planaria dynamically fissions a DNN accelerator's PE array so several DNNs
can be co-located spatially, re-partitioning layer-by-layer based on each
DNN's timing requirement and resource demand.  As in the paper, only its
scheduling policy is modelled (the original is a hardware/software
co-design):

* requests are prioritized by *slack* (time to deadline minus estimated
  remaining work) — the most at-risk request is served first;
* layer granularity: an assignment covers one layer, so the partitioning
  can be revisited at every layer boundary;
* spatial fission: a fully idle accelerator may be split in half to serve
  two at-risk requests concurrently (the engine scales the compute-bound
  latency component accordingly);
* resource awareness is by PE *count* only.  Planaria predates
  heterogeneous-dataflow platforms, so its latency estimate assumes a
  generic array: it prefers the accelerator with the most free PEs rather
  than the dataflow-preferred one, and it does not optimize energy.  This
  is what leaves room for DREAM's preference and energy scores on
  heterogeneous hardware (Figure 7 vs Figure 8).
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import Scheduler, WakeHint
from repro.sim.decisions import Assignment, SchedulingDecision, SystemView
from repro.sim.request import InferenceRequest


class PlanariaScheduler(Scheduler):
    """Slack-driven, PE-count-aware, fission-capable layer scheduler.

    Args:
        fission_threshold: minimum number of at-risk pending requests before
            a fully idle accelerator is split in half.
        min_fraction: PE fraction of each fission partition.
    """

    name = "planaria"

    def __init__(self, fission_threshold: int = 2, min_fraction: float = 0.5) -> None:
        super().__init__()
        if fission_threshold < 2:
            raise ValueError("fission_threshold must be at least 2")
        if not 0.0 < min_fraction <= 0.5:
            raise ValueError("min_fraction must be in (0, 0.5]")
        self.fission_threshold = fission_threshold
        self.min_fraction = min_fraction
        # Remaining-work estimates only change when a request makes progress.
        self._remaining_cache: dict[int, tuple[int, float]] = {}

    def on_request_finished(self, request: InferenceRequest, now_ms: float) -> None:
        """Evict the finished request's remaining-work memo entry."""
        self._remaining_cache.pop(request.request_id, None)

    def wake_hint(self) -> WakeHint:
        """Inert without pending work or ``min_fraction`` of free PEs somewhere.

        An accelerator below ``min_fraction`` free is skipped by the
        assignment loop, so with every accelerator below the threshold the
        decision is empty; the only state written on that path is the
        remaining-work memo cache (a pure function of request progress,
        exempt by the :class:`~repro.schedulers.base.WakeHint` contract).
        """
        return WakeHint(min_free_fraction=self.min_fraction, elide_when_no_pending=True)

    # ------------------------------------------------------------------ #
    # internal estimates (deliberately dataflow-agnostic)
    # ------------------------------------------------------------------ #
    def _pe_agnostic_remaining_ms(self, request: InferenceRequest) -> float:
        """Remaining-work estimate by PE count only (no dataflow preference)."""
        cost_table = self._require_bound()
        cached = self._remaining_cache.get(request.request_id)
        if cached is not None and cached[0] == request.next_position:
            return cached[1]
        value = cost_table.remaining_average_latency(
            request.model_name, request.remaining_path()
        )
        self._remaining_cache[request.request_id] = (request.next_position, value)
        return value

    def _slack_score(self, request: InferenceRequest, now_ms: float) -> float:
        """Slack minus remaining work; smaller (more negative) = more urgent."""
        return (request.deadline_ms - now_ms) - self._pe_agnostic_remaining_ms(request)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, view: SystemView) -> SchedulingDecision:
        pending = [
            request for request in view.pending_requests if request.remaining_layers
        ]
        if not pending:
            return SchedulingDecision.empty()
        # Score each request once per round (the score only depends on the
        # request and ``now``), then reuse it for both the priority sort and
        # the at-risk count.  (score, request) pairs sorted on the score
        # alone replace the historical request-id dict: the sort is stable,
        # so ties keep the (arrival, request_id) order of the pending
        # snapshot — exactly what the dict-keyed sort produced.
        now_ms = view.now_ms
        slack_score = self._slack_score
        scored = [(slack_score(request, now_ms), request) for request in pending]
        scored.sort(key=lambda pair: pair[0])
        pending = [request for _score, request in scored]

        # The at-risk count is only consulted by the fission rule, which
        # requires a fully idle accelerator — computed lazily so saturated
        # rounds skip the extra O(pending) pass.
        at_risk_count: Optional[int] = None

        assignments: list[Assignment] = []
        assigned_ids: set[int] = set()

        # Accelerators ordered by free PE capacity (count-based resource view).
        platform = view.platform
        accelerators = sorted(
            view.accelerators,
            key=lambda acc: acc.free_fraction * platform[acc.acc_id].num_pes,
            reverse=True,
        )

        for acc in accelerators:
            if len(assigned_ids) == len(pending):
                break
            free = acc.free_fraction
            if free < self.min_fraction - 1e-9:
                continue
            fission = False
            if acc.is_idle and len(pending) >= 2:
                if at_risk_count is None:
                    at_risk_count = sum(1 for score, _request in scored if score < 0.0)
                fission = at_risk_count >= self.fission_threshold
            fractions = (
                [self.min_fraction, self.min_fraction] if fission else [min(1.0, free)]
            )
            for fraction in fractions:
                request = self._pick_for_accelerator(acc, pending, assigned_ids)
                if request is None:
                    break
                assignments.append(
                    Assignment(
                        request=request,
                        acc_id=acc.acc_id,
                        layer_count=1,
                        pe_fraction=fraction,
                    )
                )
                assigned_ids.add(request.request_id)
        return SchedulingDecision.of(assignments)

    def _pick_for_accelerator(
        self,
        acc,
        queue: list[InferenceRequest],
        assigned_ids: set[int],
    ) -> Optional[InferenceRequest]:
        """Most urgent unassigned request, with resident-model stickiness.

        Planaria keeps a co-located DNN on its sub-array across layers, so
        among the few most urgent requests the one whose model is already
        resident on this accelerator is preferred — that avoids pathological
        per-layer ping-pong (and its flush/fetch cost) without changing the
        slack-driven priority order materially.

        ``queue`` is the urgency-sorted pending list; the scan walks it
        once, looking only at the first ``fission_threshold + 1`` unassigned
        entries (the "head" the stickiness rule may prefer), so deep queues
        are never materialized into a per-call candidate list.
        """
        resident = acc.resident_model
        head_limit = self.fission_threshold + 1
        first: Optional[InferenceRequest] = None
        seen = 0
        for request in queue:
            if request.request_id in assigned_ids:
                continue
            if first is None:
                first = request
            if resident is not None and request.model_name == resident:
                return request
            seen += 1
            if seen >= head_limit or resident is None:
                break
        return first

    def info(self):
        return {
            "fission_threshold": self.fission_threshold,
            "min_fraction": self.min_fraction,
        }
