"""Veltair-style layer-block scheduler [21].

Veltair is an adaptive-compilation + scheduling framework for multi-tenant
DNN serving on homogeneous CPU clusters.  Following the paper, only its
*scheduling* component is modelled: consecutive layers are grouped into
layer blocks whose size is chosen so scheduling conflicts stay rare, blocks
are dispatched in earliest-deadline-first order, and a block goes to the
next available compute resource.

Two properties matter for the comparison with DREAM:

* it is deadline-aware (EDF across pending requests), and
* it is *not* heterogeneity-aware — Veltair targets identical CPU cores, so
  accelerator selection ignores dataflow/size preference (blocks are placed
  on whichever accelerator has been idle the longest), and it is not
  energy-aware.
"""

from __future__ import annotations


from repro.schedulers.base import Scheduler, WakeHint
from repro.sim.decisions import Assignment, SchedulingDecision, SystemView
from repro.sim.request import InferenceRequest


class VeltairScheduler(Scheduler):
    """Layer-block EDF scheduler, heterogeneity-blind.

    Args:
        block_latency_ms: target (average-across-accelerators) latency of
            one layer block; consecutive layers are grouped until the block
            reaches this budget.  Veltair adapts its block size to the
            conflict rate; a fixed, sub-millisecond budget reproduces its
            "medium granularity" operating point.
    """

    name = "veltair"

    def __init__(self, block_latency_ms: float = 0.75) -> None:
        super().__init__()
        if block_latency_ms <= 0:
            raise ValueError("block_latency_ms must be positive")
        self.block_latency_ms = block_latency_ms
        self._next_acc_index = 0

    def wake_hint(self) -> WakeHint:
        """Inert without pending work or an idle accelerator.

        The round-robin cursor (``_next_acc_index``) only advances after
        both the idle and the pending check pass — exactly the calls the
        hint never elides — so the promise holds at any instant.
        """
        return WakeHint(min_free_fraction=1.0, elide_when_no_pending=True)

    # ------------------------------------------------------------------ #
    # block formation
    # ------------------------------------------------------------------ #
    def block_size(self, request: InferenceRequest) -> int:
        """Number of upcoming layers grouped into the next block."""
        cost_table = self._require_bound()
        accumulated = 0.0
        count = 0
        for layer_index in request.remaining_path():
            accumulated += cost_table.average_latency(request.model_name, layer_index)
            count += 1
            if accumulated >= self.block_latency_ms:
                break
        return max(1, count)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, view: SystemView) -> SchedulingDecision:
        idle = [acc for acc in view.accelerators if acc.is_idle]
        if not idle:
            return SchedulingDecision.empty()
        pending = [
            request for request in view.pending_requests if request.remaining_layers
        ]
        if not pending:
            return SchedulingDecision.empty()
        # Earliest deadline first across all pending requests.
        pending.sort(key=lambda request: (request.deadline_ms, request.arrival_ms))

        assignments = []
        assigned_ids: set[int] = set()
        for acc in self._rotate(idle):
            request = next(
                (r for r in pending if r.request_id not in assigned_ids), None
            )
            if request is None:
                break
            assignments.append(
                Assignment(
                    request=request,
                    acc_id=acc.acc_id,
                    layer_count=self.block_size(request),
                )
            )
            assigned_ids.add(request.request_id)
        return SchedulingDecision.of(assignments)

    def _rotate(self, idle_accelerators):
        """Round-robin start index so no accelerator is systematically favoured."""
        if not idle_accelerators:
            return []
        start = self._next_acc_index % len(idle_accelerators)
        self._next_acc_index += 1
        return idle_accelerators[start:] + idle_accelerators[:start]

    def info(self):
        return {"block_latency_ms": self.block_latency_ms}
