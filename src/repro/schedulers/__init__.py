"""Schedulers: the DREAM variants and the paper's baselines.

Every scheduler implements the :class:`~repro.schedulers.base.Scheduler`
protocol and can be instantiated by name through
:func:`~repro.schedulers.registry.make_scheduler`:

* ``fcfs_static`` / ``fcfs_dynamic`` — first-come-first-served (Figure 2)
* ``veltair``  — layer-block scheduling, deadline-aware, heterogeneity-blind
* ``planaria`` — deadline-aware spatial fission of the PE arrays
* ``dream_fixed`` / ``dream_mapscore`` / ``dream_smartdrop`` / ``dream_full``
  — the DREAM configurations of Table 4 (plus the fixed-parameter baseline
  used in Figure 9)
"""

from repro.schedulers.base import Scheduler, WakeHint
from repro.schedulers.fcfs import DynamicFcfsScheduler, StaticFcfsScheduler
from repro.schedulers.veltair import VeltairScheduler
from repro.schedulers.planaria import PlanariaScheduler
from repro.schedulers.registry import (
    SCHEDULER_FACTORIES,
    make_scheduler,
    scheduler_names,
    baseline_scheduler_names,
    dream_scheduler_names,
)

__all__ = [
    "Scheduler",
    "WakeHint",
    "DynamicFcfsScheduler",
    "StaticFcfsScheduler",
    "VeltairScheduler",
    "PlanariaScheduler",
    "SCHEDULER_FACTORIES",
    "make_scheduler",
    "scheduler_names",
    "baseline_scheduler_names",
    "dream_scheduler_names",
]
