"""The scheduler protocol shared by DREAM and all baselines.

A scheduler is a policy object the simulation engine consults at every
state change.  The engine guarantees the call order:

1. :meth:`Scheduler.bind` — once, before the simulation starts, with the
   platform, the offline cost table, the scenario and a private random
   generator.
2. :meth:`Scheduler.on_request_arrival` — whenever a sensor frame or a
   triggered cascade becomes an inference request.
3. :meth:`Scheduler.schedule` — at every scheduling point; the scheduler
   inspects a :class:`~repro.sim.decisions.SystemView` and returns a
   :class:`~repro.sim.decisions.SchedulingDecision`.
4. :meth:`Scheduler.on_layers_complete` — when dispatched layers finish but
   the request still has layers left.
5. :meth:`Scheduler.on_request_finished` — when a request reaches a
   terminal state (completed, dropped or expired).

Only :meth:`schedule` is abstract; the bookkeeping hooks default to no-ops
so simple policies stay simple.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.hardware.cost_table import CostTable
from repro.hardware.platform import Platform
from repro.sim.decisions import SchedulingDecision, SystemView
from repro.sim.request import InferenceRequest
from repro.workloads.scenario import Scenario


@dataclass(frozen=True)
class WakeHint:
    """A scheduler's promise about provably-inert scheduling points.

    Schedulers are deterministic functions of the :class:`~repro.sim
    .decisions.SystemView`, so many ``schedule()`` calls are foregone
    conclusions — e.g. a work-conserving scheduler consulted while every
    accelerator is saturated.  A wake hint lets the engine *elide* such
    calls: a scheduling point covered by the hint is guaranteed to

    * return an empty :class:`~repro.sim.decisions.SchedulingDecision`, and
    * leave the scheduler's decision-relevant state untouched (pure
      memoization caches — values derived only from a request's identity
      and progress — are exempt, since cold caches recompute identical
      values).

    Declaring a hint is optional (:meth:`Scheduler.wake_hint` returns
    ``None`` by default — always consult) and must be conservative: a hint
    only needs to name *sufficient* conditions for inertness, never all of
    them.  The engine re-derives every condition from live pool/executor
    state at each scheduling point, so elision can never act on stale
    information; ``repro bench-engine`` and the elision parity tests verify
    bit-for-bit identical results, traces and stats with elision on vs off.

    Attributes:
        min_free_fraction: if set, ``schedule()`` is inert whenever at
            least one request is pending but **no** accelerator has
            ``free_fraction >= min_free_fraction - 1e-9`` (an accelerator's
            free fraction only changes through dispatch/completion, never
            through the mere passage of time, so the engine cannot miss a
            capacity change).  ``None`` disables capacity-based elision —
            required for schedulers that may act without capacity, e.g. by
            dropping frames.
        elide_when_no_pending: if True, ``schedule()`` is inert whenever
            the pool holds no pending request at all.
        same_instant_only: if True, the promises above additionally require
            that a real ``schedule()`` call already happened at the *same*
            simulated timestamp with no request arrival, expiry or
            finalization in between (pool membership unchanged).  This is
            the contract for schedulers whose per-call bookkeeping is
            idempotent within one instant but not across instants — e.g.
            DREAM's online adaptivity step, which may advance its
            observation window the first time it sees a new timestamp.
    """

    min_free_fraction: Optional[float] = None
    elide_when_no_pending: bool = False
    same_instant_only: bool = False


class Scheduler(abc.ABC):
    """Base class for scheduling policies.

    Attributes:
        name: short identifier used in results and reports.
    """

    name: str = "scheduler"

    #: Decision-kernel selection, stamped by the simulation engine before
    #: :meth:`bind` (``SimulationEngine(kernel=...)``).  ``"python"`` is the
    #: scalar hot path; ``"vector"`` asks kernel-aware schedulers (DREAM) to
    #: evaluate large scheduling rounds through the NumPy decision kernel.
    #: Schedulers that ignore it behave identically under both values.
    decision_kernel: str = "python"

    def __init__(self) -> None:
        self.platform: Optional[Platform] = None
        self.cost_table: Optional[CostTable] = None
        self.scenario: Optional[Scenario] = None
        self.rng: random.Random = random.Random(0)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def bind(
        self,
        platform: Platform,
        cost_table: CostTable,
        scenario: Scenario,
        rng: random.Random,
    ) -> None:
        """Attach the scheduler to a concrete system before simulation.

        Subclasses overriding this must call ``super().bind(...)`` so the
        shared attributes are populated.
        """
        self.platform = platform
        self.cost_table = cost_table
        self.scenario = scenario
        self.rng = rng

    def on_request_arrival(self, request: InferenceRequest, now_ms: float) -> None:
        """Hook: a new inference request entered the system."""

    def on_layers_complete(self, request: InferenceRequest, now_ms: float) -> None:
        """Hook: dispatched layers finished; the request has more layers."""

    def on_request_finished(self, request: InferenceRequest, now_ms: float) -> None:
        """Hook: the request reached a terminal state."""

    @abc.abstractmethod
    def schedule(self, view: SystemView) -> SchedulingDecision:
        """Decide what to dispatch (and optionally drop) right now.

        ``view`` is only valid during this call: the engine reuses and
        refreshes view objects between scheduling points, so do not store
        the view (or its accelerator views / ``queue_depths``) on the
        scheduler, and do not mutate anything reachable from it.  Derive
        any state you need and keep that instead.
        """

    def info(self) -> Mapping[str, object]:
        """Scheduler-specific details attached to the simulation result."""
        return {}

    def wake_hint(self) -> Optional[WakeHint]:
        """Conditions under which ``schedule()`` is a provable no-op.

        Returning ``None`` (the default) is the conservative choice: the
        engine consults the scheduler at every scheduling point, exactly as
        if dispatch elision did not exist.  Schedulers that can promise
        inertness (see :class:`WakeHint`) return a hint instead; the engine
        queries it once per run, right after :meth:`bind`.
        """
        return None

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _require_bound(self) -> CostTable:
        """Return the cost table, failing loudly if ``bind`` was skipped."""
        if self.cost_table is None:
            raise RuntimeError(
                f"{type(self).__name__} was not bound to a platform before use"
            )
        return self.cost_table

    def remaining_best_latency_ms(self, request: InferenceRequest) -> float:
        """minimum_to_go: remaining latency on the per-layer best accelerators."""
        cost_table = self._require_bound()
        return cost_table.remaining_best_latency(request.model_name, request.remaining_path())

    def remaining_average_latency_ms(self, request: InferenceRequest) -> float:
        """ToGo: remaining latency averaged across accelerators (Algorithm 1)."""
        cost_table = self._require_bound()
        return cost_table.remaining_average_latency(request.model_name, request.remaining_path())

    def slack_ms(self, request: InferenceRequest, now_ms: float) -> float:
        """Slack: time left until the request's deadline."""
        return request.deadline_ms - now_ms
