"""Scheduler registry: instantiate any evaluated scheduler by name.

The names match the configurations compared in the paper's evaluation
(Section 5.1 baselines and Table 4 DREAM variants), which keeps the
experiment harness and the benchmarks declarative — a figure is defined by
a list of scheduler names, scenario names and platform names.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import dream_fixed, dream_full, dream_mapscore, dream_smartdrop
from repro.core.dream import DreamScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import DynamicFcfsScheduler, StaticFcfsScheduler
from repro.schedulers.planaria import PlanariaScheduler
from repro.schedulers.veltair import VeltairScheduler

#: Factories for every evaluated scheduler, keyed by canonical name.
SCHEDULER_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "fcfs_static": StaticFcfsScheduler,
    "fcfs_dynamic": DynamicFcfsScheduler,
    "veltair": VeltairScheduler,
    "planaria": PlanariaScheduler,
    "dream_fixed": lambda: DreamScheduler(dream_fixed(), name="dream_fixed"),
    "dream_mapscore": lambda: DreamScheduler(dream_mapscore(), name="dream_mapscore"),
    "dream_smartdrop": lambda: DreamScheduler(dream_smartdrop(), name="dream_smartdrop"),
    "dream_full": lambda: DreamScheduler(dream_full(), name="dream_full"),
}


def scheduler_names() -> list[str]:
    """All registered scheduler names."""
    return list(SCHEDULER_FACTORIES)


def baseline_scheduler_names() -> list[str]:
    """The non-DREAM baselines compared in Figures 7, 8 and 12."""
    return ["fcfs_dynamic", "veltair", "planaria"]


def dream_scheduler_names() -> list[str]:
    """The DREAM configurations of Table 4."""
    return ["dream_mapscore", "dream_smartdrop", "dream_full"]


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a fresh scheduler by name.

    Raises:
        KeyError: if the name is not registered.
    """
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {scheduler_names()}"
        ) from None
    return factory()
